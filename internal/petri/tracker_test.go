package petri

import (
	"math/rand"
	"testing"
)

// randomNet builds a seeded random net: a mix of internal and channel
// places, transitions of all kinds, duplicate arc additions (weight
// accumulation) and self loops — the shapes the tracker's changed-place
// analysis must survive.
func randomNet(rng *rand.Rand) *Net {
	n := New("rand")
	nPlaces := rng.Intn(8) + 2
	for i := 0; i < nPlaces; i++ {
		kind := PlaceInternal
		if rng.Intn(2) == 0 {
			kind = PlaceChannel
		}
		n.AddPlace("", kind, rng.Intn(3))
	}
	nTrans := rng.Intn(10) + 2
	for i := 0; i < nTrans; i++ {
		kind := TransNormal
		switch rng.Intn(6) {
		case 0:
			kind = TransSourceUnc
		case 1:
			kind = TransSink
		}
		t := n.AddTransition("", kind)
		if kind != TransSourceUnc {
			for a := rng.Intn(3) + 1; a > 0; a-- {
				n.AddArc(n.Places[rng.Intn(nPlaces)], t, rng.Intn(2)+1)
			}
			if rng.Intn(4) == 0 {
				n.AddSelfLoop(n.Places[rng.Intn(nPlaces)], t, 1)
			}
		}
		for a := rng.Intn(3); a > 0; a-- {
			n.AddArcTP(t, n.Places[rng.Intn(nPlaces)], rng.Intn(2)+1)
		}
	}
	return n
}

// bitsOf collects the set ECS indexes of a bitset.
func bitsOf(set []uint64, num int) []int {
	var out []int
	for i := 0; i < num; i++ {
		if HasBit(set, i) {
			out = append(out, i)
		}
	}
	return out
}

// enabledIdx is the brute-force reference: full-partition scan.
func enabledIdx(n *Net, part []*ECS, m Marking) []int {
	var out []int
	for _, e := range part {
		if e.Enabled(n, m) {
			out = append(out, e.Index)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEnabledTrackerRandomWalks: along random firing walks of random
// nets, the incrementally maintained enabled set must equal the full
// partition scan at every step.
func TestEnabledTrackerRandomWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := randomNet(rng)
		part := n.ECSPartition()
		tr := NewEnabledTracker(n, part)
		if tr.NumECS() != len(part) {
			t.Fatalf("trial %d: NumECS %d != partition %d", trial, tr.NumECS(), len(part))
		}
		m := n.InitialMarking()
		cur := make([]uint64, tr.Stride())
		next := make([]uint64, tr.Stride())
		tr.Init(cur, m)
		if got, want := bitsOf(cur, len(part)), enabledIdx(n, part, m); !equalInts(got, want) {
			t.Fatalf("trial %d: Init %v, want %v", trial, got, want)
		}
		for step := 0; step < 60; step++ {
			// Fire a random enabled transition, capping token counts so
			// source-driven nets stay small.
			var enabled []int
			for _, tt := range n.Transitions {
				if m.Enabled(tt) {
					enabled = append(enabled, tt.ID)
				}
			}
			if len(enabled) == 0 {
				break
			}
			tid := enabled[rng.Intn(len(enabled))]
			fired := m.Fire(n.Transitions[tid])
			over := false
			for _, v := range fired {
				if v > 12 {
					over = true
				}
			}
			if over {
				break
			}
			m = fired
			tr.Update(next, cur, tid, m)
			if got, want := bitsOf(next, len(part)), enabledIdx(n, part, m); !equalInts(got, want) {
				t.Fatalf("trial %d step %d after t%d: tracker %v, want %v (touched %v)",
					trial, step, tid, got, want, tr.Touched(tid))
			}
			cur, next = next, cur
		}
		// ECSOf covers the whole partition.
		for _, e := range part {
			for _, tid := range e.Trans {
				if tr.ECSOf(tid) != e.Index {
					t.Fatalf("trial %d: ECSOf(%d) = %d, want %d", trial, tid, tr.ECSOf(tid), e.Index)
				}
			}
		}
	}
}

// TestEnabledTrackerSelfLoopUntouched: a pure self loop changes no
// token count, so firing it must touch no ECS keyed on that place.
func TestEnabledTrackerSelfLoopUntouched(t *testing.T) {
	n := New("selfloop")
	p := n.AddPlace("p", PlaceChannel, 1)
	q := n.AddPlace("q", PlaceChannel, 1)
	tl := n.AddTransition("loop", TransNormal)
	n.AddSelfLoop(p, tl, 1)
	n.AddArc(q, tl, 1)
	n.AddArcTP(tl, q, 2)
	reader := n.AddTransition("reader", TransNormal)
	n.AddArc(p, reader, 1)
	part := n.ECSPartition()
	tr := NewEnabledTracker(n, part)
	readerECS := tr.ECSOf(reader.ID)
	for _, e := range tr.Touched(tl.ID) {
		if int(e) == readerECS {
			t.Fatalf("self-loop firing should not touch the reader's ECS (touched %v)", tr.Touched(tl.ID))
		}
	}
	// q's count changes (consume 1, produce 2): the loop's own ECS is
	// keyed on q and must be touched.
	found := false
	for _, e := range tr.Touched(tl.ID) {
		if int(e) == tr.ECSOf(tl.ID) {
			found = true
		}
	}
	if !found {
		t.Fatalf("q-delta should touch the loop ECS (touched %v)", tr.Touched(tl.ID))
	}
}
