package apps

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

// Golden-file integration tests: the generated C of every example
// application is pinned byte-for-byte under testdata/golden/, so
// codegen drift — a renamed variable, a reordered segment, a changed
// buffer bound — is caught by plain `go test` instead of only by the
// fuzz/determinism harnesses. Regenerate intentionally with:
//
//	go test ./internal/apps -run TestGoldenCode -update
//
// and review the diff like any other source change. Each app also pins
// a MANIFEST of task names and guaranteed channel bounds, so a task
// appearing, disappearing or changing its contract fails even when the
// per-task files still match.

var update = flag.Bool("update", false, "rewrite the golden files with the current generator output")

// goldenApps lists the example programs (examples/* all synthesize one
// of these) in a fixed order.
var goldenApps = []struct {
	name  string
	flowc string
	spec  string
}{
	{"divisors", Divisors, DivisorsSpec},
	{"pixelpipe", PixelPipe, PixelPipeSpec},
	{"multirate", MultiRate, MultiRateSpec},
	{"falsepath_fixed", FalsePathFixed, FalsePathFixedSpec},
	{"pfc", PFC, PFCSpec},
}

// goldenManifest renders the stable per-app summary: tasks in name
// order and every named channel's statically guaranteed bound.
func goldenManifest(r *core.Result) string {
	var sb strings.Builder
	names := make([]string, 0, len(r.Code))
	for name := range r.Code {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(&sb, "tasks %d\n", len(names))
	for _, name := range names {
		task := r.TaskByName(name)
		fmt.Fprintf(&sb, "task %s segments %d nodes %d\n", name, len(task.Segments), len(r.Schedules[taskIndex(r, name)].Nodes))
	}
	type chb struct {
		name  string
		bound int
	}
	var chans []chb
	for _, ch := range r.Sys.Channels {
		chans = append(chans, chb{ch.Spec.Name, r.Bounds[ch.Place.ID]})
	}
	sort.Slice(chans, func(i, j int) bool { return chans[i].name < chans[j].name })
	for _, c := range chans {
		fmt.Fprintf(&sb, "channel %s bound %d\n", c.name, c.bound)
	}
	return sb.String()
}

func taskIndex(r *core.Result, name string) int {
	for i, t := range r.Tasks {
		if t.Name == name {
			return i
		}
	}
	return -1
}

func TestGoldenCode(t *testing.T) {
	for _, app := range goldenApps {
		t.Run(app.name, func(t *testing.T) {
			r, err := core.Synthesize(app.flowc, app.spec, &core.Options{DisableCache: true})
			if err != nil {
				t.Fatalf("synthesize %s: %v", app.name, err)
			}
			dir := filepath.Join("testdata", "golden", app.name)
			files := map[string]string{"MANIFEST": goldenManifest(r)}
			for name, code := range r.Code {
				files[name+".c"] = code
			}
			if *update {
				if err := os.RemoveAll(dir); err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				for fname, content := range files {
					if err := os.WriteFile(filepath.Join(dir, fname), []byte(content), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				t.Logf("updated %s (%d files)", dir, len(files))
				return
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatalf("golden dir missing (run with -update to create): %v", err)
			}
			onDisk := map[string]bool{}
			for _, e := range entries {
				onDisk[e.Name()] = true
			}
			for fname, content := range files {
				if !onDisk[fname] {
					t.Errorf("generated %s has no golden file (run with -update and review)", fname)
					continue
				}
				delete(onDisk, fname)
				want, err := os.ReadFile(filepath.Join(dir, fname))
				if err != nil {
					t.Fatal(err)
				}
				if string(want) != content {
					t.Errorf("%s/%s drifted from golden (run with -update and review the diff):\n--- golden\n%s\n--- generated\n%s",
						app.name, fname, want, content)
				}
			}
			for fname := range onDisk {
				t.Errorf("stale golden file %s/%s: no longer generated (run with -update)", app.name, fname)
			}
		})
	}
}
