package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/apps"
)

// TestServerSmoke is the end-to-end check CI runs as its server-smoke
// step: build the real binary, start it on a free port, hit every
// endpoint over real HTTP, and assert the C returned for the PFC
// application is byte-identical to the golden files the CLI path is
// pinned against. A warm repeat of the same request must report a
// cache hit. SIGTERM must drain and exit 0.
func TestServerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the server binary")
	}
	bin := filepath.Join(t.TempDir(), "qss-server")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build: %v", err)
	}

	cmd := exec.Command(bin, "-listen", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	exited := false
	defer func() {
		if !exited {
			cmd.Process.Kill()
			<-done
		}
	}()

	// The resolved listen address is logged as a contract; parse it.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("server: %s", line)
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- line[i+len("listening on "):]:
				default:
				}
			}
		}
		done <- cmd.Wait()
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("server never logged its listen address")
	}

	if status, body := get(t, base+"/healthz"); status != 200 || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", status, body)
	}
	if status, body := get(t, base+"/readyz"); status != 200 || body != "ready\n" {
		t.Fatalf("/readyz: %d %q", status, body)
	}
	if status, body := get(t, base+"/metrics"); status != 200 ||
		!strings.Contains(body, "# TYPE qss_requests_total counter") ||
		!strings.Contains(body, "qss_synthesis_seconds_bucket") {
		t.Fatalf("/metrics malformed: status %d", status)
	}

	// Cold synthesis of the paper's video application (PFC): the
	// returned C must match the golden files the CLI path is pinned to.
	cold := postSynthesize(t, base, apps.PFC, apps.PFCSpec)
	if cold["cache_hit"].(bool) {
		t.Fatal("cold request reported cache_hit")
	}
	code := cold["code"].(map[string]any)
	golden, err := os.ReadFile(filepath.Join("..", "..", "internal", "apps", "testdata", "golden", "pfc", "task_init.c"))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := code["task_init"].(string)
	if !ok {
		t.Fatalf("response code map lacks task_init (have %d entries)", len(code))
	}
	if got != string(golden) {
		t.Fatalf("server C for pfc/task_init differs from golden (%d vs %d bytes)", len(got), len(golden))
	}

	warm := postSynthesize(t, base, apps.PFC, apps.PFCSpec)
	if !warm["cache_hit"].(bool) {
		t.Fatal("repeat request did not hit the shared cache")
	}
	if warm["code"].(map[string]any)["task_init"].(string) != string(golden) {
		t.Fatal("warm response C differs from golden")
	}

	if status, body := get(t, base+"/metrics"); status != 200 ||
		!strings.Contains(body, "qss_cache_hits_total 1") ||
		!strings.Contains(body, "qss_cache_misses_total 1") {
		t.Fatalf("/metrics after traffic lacks hit/miss counters:\nstatus %d", status)
	}

	// Graceful drain: SIGTERM, clean exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		exited = true
		if err != nil {
			t.Fatalf("server exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit within 30s of SIGTERM")
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, sb.String()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postSynthesize(t *testing.T, base, flowc, net string) map[string]any {
	t.Helper()
	body, err := json.Marshal(map[string]any{"flowc": flowc, "net": net})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/synthesize: status %d: %s", resp.StatusCode, raw)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(raw), &out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return out
}
