// Package apps holds the FlowC applications used by the examples, tests
// and benchmarks: the divisors process of Figure 1, the Section 7.2
// false-path pair (plain and SELECT-fixed), and the Section 8.2 video
// application (producer / filter / consumer / controller, "PFC").
package apps

import (
	"fmt"

	"repro/internal/core"
)

// Divisors is the process of Figure 1: it reads numbers and emits all
// their divisors (the greatest on port max, all of them on port all).
const Divisors = `
PROCESS divisors (In DPORT in, Out DPORT max, Out DPORT all) {
  int n, i;
  while (1) {
    READ_DATA(in, &n, 1);
    i = n / 2;
    while (n % i != 0)
      i--;
    WRITE_DATA(max, i, 1);
    WRITE_DATA(all, i, 1);
    while (i > 1) {
      i--;
      if (n % i == 0)
        WRITE_DATA(all, i, 1);
    }
  }
}
`

// DivisorsSpec connects the divisors process to the environment.
const DivisorsSpec = `
system divisors
input in -> divisors.in uncontrollable
output divisors.max -> max
output divisors.all -> all
`

// PixelPipe is a two-process pixel pipeline: the producer emits a
// data-dependent number of pixels per trigger followed by an end-of-line
// marker; the consumer drains with a SELECT loop (the Section 7.2
// pattern), so the pair is schedulable despite the counted loop. The
// acknowledgement keeps at most one burst in flight — without it the
// free-running implementation could interleave bursts at the SELECT,
// which is exactly the schedule-dependence SELECT introduces (Section
// 7.1).
const PixelPipe = `
PROCESS producer (In DPORT go, In DPORT ack, Out DPORT pix, Out DPORT eol) {
  int n, i, a;
  while (1) {
    READ_DATA(go, &n, 1);
    for (i = 0; i < n; i++) {
      WRITE_DATA(pix, i * 3 + 1, 1);
    }
    WRITE_DATA(eol, n, 1);
    READ_DATA(ack, &a, 1);
  }
}

PROCESS consumer (In DPORT pix, In DPORT eol, Out DPORT out, Out DPORT ack) {
  int v, e, done, sum;
  while (1) {
    done = 0;
    sum = 0;
    while (!done) {
      switch (SELECT(pix, 1, eol, 1)) {
      case 0:
        READ_DATA(pix, &v, 1);
        sum = sum + v;
        break;
      case 1:
        READ_DATA(eol, &e, 1);
        WRITE_DATA(ack, 0, 1);
        done = 1;
        break;
      }
    }
    WRITE_DATA(out, sum, 1);
  }
}
`

// PixelPipeSpec wires the pixel pipeline.
const PixelPipeSpec = `
system pixelpipe
channel Pix producer.pix -> consumer.pix
channel Eol producer.eol -> consumer.eol
channel Ack consumer.ack -> producer.ack
input go -> producer.go uncontrollable
output consumer.out -> sums
`

// SynthesizePixelPipe runs the full flow on the pixel pipeline.
func SynthesizePixelPipe() (*core.Result, error) {
	return core.Synthesize(PixelPipe, PixelPipeSpec, nil)
}

// SynthesizeDivisors runs the full flow on the divisors system.
func SynthesizeDivisors() (*core.Result, error) {
	return core.Synthesize(Divisors, DivisorsSpec, nil)
}

// FalsePathPlain is the unschedulable pair of Section 7.2: the loop
// bounds of A and B match (10 writes / 10 reads, then 2 / 2 the other
// way), but the Petri net abstraction loses the data correlation, so
// every quasi-static schedule hits a false overflow path. The processes
// are triggered by an uncontrollable go port to make them cyclic.
const FalsePathPlain = `
PROCESS a (In DPORT go, Out DPORT c0, In DPORT c1, Out DPORT res) {
  int g, i, v, acc;
  while (1) {
    READ_DATA(go, &g, 1);
    acc = 0;
    for (i = 0; i < 10; i++) {
      WRITE_DATA(c0, g + i, 1);
    }
    for (i = 0; i < 2; i++) {
      READ_DATA(c1, &v, 1);
      acc = acc + v;
    }
    WRITE_DATA(res, acc, 1);
  }
}

PROCESS b (In DPORT c0, Out DPORT c1) {
  int i, v, sum;
  while (1) {
    sum = 0;
    for (i = 0; i < 10; i++) {
      READ_DATA(c0, &v, 1);
      sum = sum + v;
    }
    for (i = 0; i < 2; i++) {
      WRITE_DATA(c1, sum + i, 1);
    }
  }
}
`

// FalsePathPlainSpec wires the plain pair.
const FalsePathPlainSpec = `
system falsepath
channel C0 a.c0 -> b.c0
channel C1 b.c1 -> a.c1
input go -> a.go uncontrollable
output a.res -> res
`

// FalsePathFixed is the SELECT-based rewrite of Section 7.2: A announces
// loop completion on done0 and B drains c0 with a SELECT until done0
// arrives, which lets the scheduler prove the overflow path false.
//
// One adaptation for cyclic (triggered) semantics, in the spirit of the
// paper's own footnote about the pattern's limits: the drain is applied
// to the forward path only and B's result goes to the environment. A
// backward drained response re-entering A deadlocks under adversarial
// choice resolution (both false T-branches can strand simultaneously
// with no process at its trigger await) — TestSymmetricDrainDeadlock
// demonstrates this.
const FalsePathFixed = `
PROCESS a (In DPORT go, Out DPORT c0, Out DPORT done0) {
  int g, i;
  while (1) {
    READ_DATA(go, &g, 1);
    for (i = 0; i < 10; i++) {
      WRITE_DATA(c0, g + i, 1);
    }
    WRITE_DATA(done0, 0, 1);
  }
}

PROCESS b (In DPORT c0, In DPORT done0, Out DPORT res) {
  int v, sum, done;
  while (1) {
    sum = 0;
    done = 0;
    while (!done) {
      switch (SELECT(c0, 1, done0, 1)) {
      case 0:
        READ_DATA(c0, &v, 1);
        sum = sum + v;
        break;
      case 1:
        READ_DATA(done0, &v, 1);
        done = 1;
        break;
      }
    }
    WRITE_DATA(res, sum, 1);
  }
}
`

// FalsePathFixedSpec wires the fixed pair.
const FalsePathFixedSpec = `
system falsepath_fixed
channel C0 a.c0 -> b.c0
channel D0 a.done0 -> b.done0
input go -> a.go uncontrollable
output b.res -> res
`

// SynthesizeFalsePathFixed runs the full flow on the fixed pair.
func SynthesizeFalsePathFixed() (*core.Result, error) {
	return core.Synthesize(FalsePathFixed, FalsePathFixedSpec, nil)
}

// TryFalsePathPlain attempts the plain pair; the expected outcome is a
// scheduling failure (conservative rejection of a schedulable program).
func TryFalsePathPlain() (*core.Result, error) {
	r, err := core.Synthesize(FalsePathPlain, FalsePathPlainSpec, nil)
	if err != nil {
		return nil, fmt.Errorf("falsepath (expected): %w", err)
	}
	return r, nil
}

// PFC is the video application of Section 8.2 (Figure 18): a producer
// generates frames of pixels, a filter scales them by a per-frame
// coefficient, a consumer emits the image to the display and
// acknowledges frame completion, and a controller — triggered by the
// only uncontrollable port, init — distributes coefficients (read from a
// controllable environment port) and kicks the producer.
//
// Frames are FrameLines lines of LinePixels pixels, transferred pixel by
// pixel (the paper's multi-rate discussion; the 4-task baseline then
// benefits from larger channel buffers, Figure 20). Filter and consumer
// are eternal SELECT loops over their inputs — in particular the
// coefficient is read "using SELECT, only if available, otherwise the
// ones received for the previous frame are used", exactly as in Section
// 8.2. This is load-bearing: a blocking coefficient read would let
// coefficients accumulate in false drain paths and make the system
// quasi-statically unschedulable.
const PFC = `
PROCESS controller (In DPORT init, In DPORT cin, In DPORT ack, Out DPORT coeff, Out DPORT req) {
  int cmd, c, a;
  while (1) {
    READ_DATA(init, &cmd, 1);
    READ_DATA(cin, &c, 1);
    WRITE_DATA(coeff, c, 1);
    WRITE_DATA(req, cmd, 1);
    READ_DATA(ack, &a, 1);
  }
}

PROCESS producer (In DPORT req, Out DPORT pix, Out DPORT eof) {
  int r, i, j;
  while (1) {
    READ_DATA(req, &r, 1);
    for (i = 0; i < 10; i++) {
      for (j = 0; j < 10; j++) {
        WRITE_DATA(pix, i * 10 + j + r, 1);
      }
    }
    WRITE_DATA(eof, 0, 1);
  }
}

PROCESS filter (In DPORT coeff, In DPORT pix, In DPORT eof, Out DPORT fpix, Out DPORT feof) {
  int c, v, d;
  c = 1;
  while (1) {
    switch (SELECT(coeff, 1, pix, 1, eof, 1)) {
    case 0:
      READ_DATA(coeff, &c, 1);
      break;
    case 1:
      READ_DATA(pix, &v, 1);
      v = v * c;
      WRITE_DATA(fpix, v, 1);
      break;
    case 2:
      READ_DATA(eof, &d, 1);
      WRITE_DATA(feof, 0, 1);
      break;
    }
  }
}

PROCESS consumer (In DPORT fpix, In DPORT feof, Out DPORT display, Out DPORT ack) {
  int v, d;
  while (1) {
    switch (SELECT(fpix, 1, feof, 1)) {
    case 0:
      READ_DATA(fpix, &v, 1);
      WRITE_DATA(display, v, 1);
      break;
    case 1:
      READ_DATA(feof, &d, 1);
      WRITE_DATA(ack, 0, 1);
      break;
    }
  }
}
`

// PFCSpec wires the video application (Figure 18).
const PFCSpec = `
system pfc
channel Coeff controller.coeff -> filter.coeff
channel Req controller.req -> producer.req
channel Ack consumer.ack -> controller.ack
channel Pix producer.pix -> filter.pix
channel Eof producer.eof -> filter.eof
channel FPix filter.fpix -> consumer.fpix
channel FEof filter.feof -> consumer.feof
input init -> controller.init uncontrollable
input cin -> controller.cin controllable
output consumer.display -> display
`

// FrameLines and LinePixels give the paper's frame geometry (Section
// 8.2: "frames were made by 10 lines of 10 pixels each").
const (
	FrameLines = 10
	LinePixels = 10
)

// FramePixels is the number of pixels per frame.
const FramePixels = FrameLines * LinePixels

// SynthesizePFC runs the full flow on the video application.
func SynthesizePFC() (*core.Result, error) {
	return SynthesizePFCWith(nil)
}

// SynthesizePFCWith runs the full flow on the video application under
// explicit pipeline options (nil = defaults).
func SynthesizePFCWith(opt *core.Options) (*core.Result, error) {
	return core.Synthesize(PFC, PFCSpec, opt)
}

// MultiRate is a line-based pipeline exercising the paper's multi-rate
// communication (Section 3): the producer writes a whole line of
// LinePixels pixels in one WRITE_DATA while the consumer drains it pixel
// by pixel — "the producer of an image may transfer a line of pixels in
// one port operation ... the consumer may read the line in a
// pixel-by-pixel basis".
const MultiRate = `
PROCESS src (In DPORT go, In DPORT ack, Out DPORT line, Out DPORT eol) {
  int g, a, j, buf[10];
  while (1) {
    READ_DATA(go, &g, 1);
    for (j = 0; j < 10; j++)
      buf[j] = g + j;
    WRITE_DATA(line, buf, 10);
    WRITE_DATA(eol, 0, 1);
    READ_DATA(ack, &a, 1);
  }
}

PROCESS snk (In DPORT line, In DPORT eol, Out DPORT out, Out DPORT ack) {
  int v, e;
  while (1) {
    switch (SELECT(line, 1, eol, 1)) {
    case 0:
      READ_DATA(line, &v, 1);
      WRITE_DATA(out, v * v, 1);
      break;
    case 1:
      READ_DATA(eol, &e, 1);
      WRITE_DATA(ack, 0, 1);
      break;
    }
  }
}
`

// MultiRateSpec wires the line-based pipeline.
const MultiRateSpec = `
system multirate
channel Line src.line -> snk.line
channel Eol src.eol -> snk.eol
channel Ack snk.ack -> src.ack
input go -> src.go uncontrollable
output snk.out -> out
`

// SynthesizeMultiRate runs the full flow on the line-based pipeline.
func SynthesizeMultiRate() (*core.Result, error) {
	return core.Synthesize(MultiRate, MultiRateSpec, nil)
}
