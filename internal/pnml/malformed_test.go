package pnml

import (
	"errors"
	"strings"
	"testing"
)

// TestParseMalformed: every out-of-subset or broken document is
// rejected with a position-bearing *ParseError — never a panic, never a
// silently degraded net. The wantMsg fragment pins which rule fired so
// a refactor cannot swap one rejection for another.
func TestParseMalformed(t *testing.T) {
	cases := []struct {
		name    string
		doc     string
		wantMsg string
	}{
		{
			"empty document",
			"",
			"empty document",
		},
		{
			"wrong root element",
			`<nets><net id="n"/></nets>`,
			"root element is <nets>",
		},
		{
			"no net",
			`<pnml></pnml>`,
			"no <net>",
		},
		{
			"two nets",
			`<pnml><net id="a" type="ptnet"></net><net id="b" type="ptnet"></net></pnml>`,
			"multiple <net>",
		},
		{
			"truncated mid-element",
			`<pnml><net id="n" type="ptnet"><place id="p1">`,
			"unexpected EOF",
		},
		{
			"mismatched close tag",
			`<pnml><net id="n" type="ptnet"></nte></pnml>`,
			"</nte>",
		},
		{
			"content after root",
			`<pnml><net id="n" type="ptnet"></net></pnml><pnml/>`,
			"after </pnml>",
		},
		{
			"duplicate place id",
			`<pnml><net id="n" type="ptnet"><place id="p"/><place id="p"/></net></pnml>`,
			`duplicate id "p"`,
		},
		{
			"id shared across kinds",
			`<pnml><net id="n" type="ptnet"><place id="x"/><transition id="x"/></net></pnml>`,
			"already declared as a place",
		},
		{
			"place without id",
			`<pnml><net id="n" type="ptnet"><place/></net></pnml>`,
			"<place> requires an id",
		},
		{
			"transition without id",
			`<pnml><net id="n" type="ptnet"><transition/></net></pnml>`,
			"<transition> requires an id",
		},
		{
			"arc without source",
			`<pnml><net id="n" type="ptnet"><place id="p"/><transition id="t"/><arc id="a" target="t"/></net></pnml>`,
			"missing source",
		},
		{
			"dangling arc source",
			`<pnml><net id="n" type="ptnet"><place id="p"/><transition id="t"/><arc id="a" source="ghost" target="t"/></net></pnml>`,
			`undeclared source "ghost"`,
		},
		{
			"dangling arc target",
			`<pnml><net id="n" type="ptnet"><place id="p"/><transition id="t"/><arc id="a" source="p" target="ghost"/></net></pnml>`,
			`undeclared target "ghost"`,
		},
		{
			"place-to-place arc",
			`<pnml><net id="n" type="ptnet"><place id="p"/><place id="q"/><arc id="a" source="p" target="q"/></net></pnml>`,
			"arcs must alternate",
		},
		{
			"transition-to-transition arc",
			`<pnml><net id="n" type="ptnet"><transition id="t"/><transition id="u"/><arc id="a" source="t" target="u"/></net></pnml>`,
			"arcs must alternate",
		},
		{
			"zero arc weight",
			`<pnml><net id="n" type="ptnet"><place id="p"/><transition id="t"/><arc id="a" source="p" target="t"><inscription><text>0</text></inscription></arc></net></pnml>`,
			"non-positive weight 0",
		},
		{
			"negative arc weight",
			`<pnml><net id="n" type="ptnet"><place id="p"/><transition id="t"/><arc id="a" source="p" target="t"><inscription><text>-3</text></inscription></arc></net></pnml>`,
			"non-positive weight -3",
		},
		{
			"non-integer arc weight",
			`<pnml><net id="n" type="ptnet"><place id="p"/><transition id="t"/><arc id="a" source="p" target="t"><inscription><text>2.5</text></inscription></arc></net></pnml>`,
			"not an integer weight",
		},
		{
			"negative initial marking",
			`<pnml><net id="n" type="ptnet"><place id="p"><initialMarking><text>-1</text></initialMarking></place></net></pnml>`,
			"negative initial marking",
		},
		{
			"non-integer initial marking",
			`<pnml><net id="n" type="ptnet"><place id="p"><initialMarking><text>many</text></initialMarking></place></net></pnml>`,
			"not an integer",
		},
		{
			"inhibitor arc",
			`<pnml><net id="n" type="ptnet"><place id="p"/><transition id="t"/><arc id="a" source="p" target="t"><type value="inhibitor"/></arc></net></pnml>`,
			`arc type "inhibitor" is not modeled`,
		},
		{
			"reset arc",
			`<pnml><net id="n" type="ptnet"><place id="p"/><transition id="t"/><arc id="a" source="p" target="t"><type value="reset"/></arc></net></pnml>`,
			`arc type "reset" is not modeled`,
		},
		{
			"colored net type",
			`<pnml><net id="n" type="http://www.pnml.org/version-2009/grammar/symmetricnet"></net></pnml>`,
			"colored/high-level net",
		},
		{
			"unknown net type",
			`<pnml><net id="n" type="http://example.org/timed-net"></net></pnml>`,
			"unsupported net type",
		},
		{
			"hlinitialMarking",
			`<pnml><net id="n" type="ptnet"><place id="p"><hlinitialMarking/></place></net></pnml>`,
			"colored-net construct",
		},
		{
			"place type annotation",
			`<pnml><net id="n" type="ptnet"><place id="p"><type/></place></net></pnml>`,
			"colored-net construct",
		},
		{
			"hlinscription",
			`<pnml><net id="n" type="ptnet"><place id="p"/><transition id="t"/><arc id="a" source="p" target="t"><hlinscription/></arc></net></pnml>`,
			"colored-net construct",
		},
		{
			"transition condition",
			`<pnml><net id="n" type="ptnet"><transition id="t"><condition/></transition></net></pnml>`,
			"colored-net construct",
		},
		{
			"declaration block",
			`<pnml><net id="n" type="ptnet"><declaration/></net></pnml>`,
			"colored-net construct",
		},
		{
			"referencePlace",
			`<pnml><net id="n" type="ptnet"><referencePlace id="r" ref="p"/></net></pnml>`,
			"flatten reference nodes",
		},
		{
			"place capacity",
			`<pnml><net id="n" type="ptnet"><place id="p"><capacity><text>3</text></capacity></place></net></pnml>`,
			"<capacity> is not modeled",
		},
		{
			"unknown element in net",
			`<pnml><net id="n" type="ptnet"><timing/></net></pnml>`,
			"unsupported <timing>",
		},
		{
			"unknown element in place",
			`<pnml><net id="n" type="ptnet"><place id="p"><delay/></place></net></pnml>`,
			"unsupported <delay>",
		},
		{
			"element inside text label",
			`<pnml><net id="n" type="ptnet"><place id="p"><name><text><b>x</b></text></name></place></net></pnml>`,
			"unexpected <b> inside <text>",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n, err := ParseBytes([]byte(c.doc))
			if err == nil {
				t.Fatalf("accepted malformed document (got net with %d places)", len(n.Places))
			}
			if !strings.Contains(err.Error(), c.wantMsg) {
				t.Errorf("error %q does not mention %q", err, c.wantMsg)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("error %T is not a *ParseError (no position)", err)
			} else if pe.Line < 1 {
				t.Errorf("ParseError line %d, want >= 1", pe.Line)
			}
			if !strings.Contains(err.Error(), "line ") {
				t.Errorf("error %q carries no position", err)
			}
		})
	}
}

// TestParsePageBomb: a pathological page-nesting document hits the
// depth guard instead of exhausting the stack.
func TestParsePageBomb(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`<pnml><net id="n" type="ptnet">`)
	for i := 0; i < maxPageDepth+2; i++ {
		sb.WriteString("<page>")
	}
	for i := 0; i < maxPageDepth+2; i++ {
		sb.WriteString("</page>")
	}
	sb.WriteString(`</net></pnml>`)
	_, err := ParseBytes([]byte(sb.String()))
	if err == nil || !strings.Contains(err.Error(), "nesting deeper") {
		t.Fatalf("err = %v, want the page-depth guard", err)
	}
}

// TestParseErrorPosition: the reported line number points into the
// document, not at line 1 — the rejection in this doc is on line 4.
func TestParseErrorPosition(t *testing.T) {
	const doc = `<pnml>
 <net id="n" type="ptnet">
  <place id="p"/>
  <place id="p"/>
 </net>
</pnml>`
	_, err := ParseBytes([]byte(doc))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if pe.Line != 4 {
		t.Errorf("error at line %d, want 4: %v", pe.Line, err)
	}
}
