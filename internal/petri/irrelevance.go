package petri

// Place degrees and the irrelevant-marking criterion (Definitions 4.4 and
// 4.5 of the paper). The criterion prunes the schedule search without
// requiring a-priori place bounds: a marking is discarded if it covers an
// ancestor in the search tree and every strictly increased place is
// already saturated (at or beyond its degree).

// Degree returns the degree of place p:
//
//	max( maxInWeight(p) + maxOutWeight(p) - 1, M0(p) )
//
// Intuitively, once p holds maxOutWeight(p)-1 tokens it is one producer
// firing away from enabling any successor; accumulating beyond
// maxIn+maxOut-1 cannot enable anything new.
func (n *Net) Degree(p *Place) int {
	maxIn, maxOut := 0, 0
	for _, tid := range n.Predecessors(p.ID) {
		if w := n.Transitions[tid].OutWeight(p.ID); w > maxIn {
			maxIn = w
		}
	}
	for _, tid := range n.Successors(p.ID) {
		if w := n.Transitions[tid].Weight(p.ID); w > maxOut {
			maxOut = w
		}
	}
	d := maxIn + maxOut - 1
	if d < p.Initial {
		d = p.Initial
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Degrees returns the degree of every place, indexed by place ID.
func (n *Net) Degrees() []int {
	out := make([]int, len(n.Places))
	for i, p := range n.Places {
		out[i] = n.Degree(p)
	}
	return out
}

// IrrelevantAgainst reports whether marking m is irrelevant with respect
// to a single earlier marking anc on the path from the root (Def. 4.5):
//
//	(a) m is reachable from anc      — guaranteed by the caller, who
//	    passes ancestors of the search-tree node;
//	(b) m covers anc;
//	(c) every place where m strictly exceeds anc is already saturated in
//	    anc (anc(p) >= degree(p)): pumping more tokens into a saturated
//	    place cannot enable anything new (see the Figure 7 discussion —
//	    "it covers ..., where places ... are already saturated").
func IrrelevantAgainst(m, anc Marking, degrees []int) bool {
	strictSomewhere := false
	for i := range m {
		if m[i] < anc[i] {
			return false
		}
		if m[i] > anc[i] {
			strictSomewhere = true
			if anc[i] < degrees[i] {
				return false
			}
		}
	}
	// A marking equal to an ancestor is not irrelevant: it closes a
	// cycle, which is exactly what the scheduler wants.
	return strictSomewhere
}

// Irrelevant reports whether m is irrelevant with respect to any of the
// given ancestor markings (ordered root first, though order is
// immaterial).
//
// Fast path: condition (c) requires a strictly grown place p with
// anc(p) >= degree(p), and (b) gives m(p) > anc(p), so m must exceed
// the degree of some place outright. A marking within its degrees
// everywhere can be dismissed in O(|P|) without scanning the ancestor
// stack — on deep search paths this is the common case and turns the
// per-node pruning cost from O(depth·|P|) into O(|P|).
func Irrelevant(m Marking, ancestors []Marking, degrees []int) bool {
	over := false
	for i, v := range m {
		if v > degrees[i] {
			over = true
			break
		}
	}
	if !over {
		return false
	}
	for _, anc := range ancestors {
		if IrrelevantAgainst(m, anc, degrees) {
			return true
		}
	}
	return false
}
