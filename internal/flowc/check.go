package flowc

import "fmt"

// Check performs semantic validation of a process:
//
//   - every READ_DATA / WRITE_DATA / SELECT port is declared with the
//     right direction (reads need In ports, writes need Out ports; SELECT
//     arms follow the operation in their body, defaulting to In);
//   - variables are declared before use and not redeclared;
//   - scalar destinations receive nitems == 1, array destinations must be
//     at least nitems long.
func Check(p *Process) error {
	c := &checker{
		proc:   p,
		arrays: map[string]int{},
		vars:   map[string]bool{},
	}
	return c.stmt(p.Body)
}

type checker struct {
	proc   *Process
	arrays map[string]int // array name -> size
	vars   map[string]bool
}

func (c *checker) declare(v VarDecl) error {
	if c.vars[v.Name] {
		return fmt.Errorf("%v: variable %s redeclared", v.Pos, v.Name)
	}
	if c.proc.PortByName(v.Name) != nil {
		return fmt.Errorf("%v: variable %s shadows a port", v.Pos, v.Name)
	}
	c.vars[v.Name] = true
	if v.ArraySize > 0 {
		c.arrays[v.Name] = v.ArraySize
	}
	return nil
}

func (c *checker) port(name string, dir PortDir, pos Pos) error {
	pd := c.proc.PortByName(name)
	if pd == nil {
		return fmt.Errorf("%v: undeclared port %s in process %s", pos, name, c.proc.Name)
	}
	if pd.Dir != dir {
		return fmt.Errorf("%v: port %s is %v, used as %v", pos, name, pd.Dir, dir)
	}
	return nil
}

func (c *checker) stmt(s Stmt) error {
	switch x := s.(type) {
	case nil:
		return nil
	case *DeclStmt:
		for _, v := range x.Vars {
			if v.Init != nil {
				if err := c.expr(v.Init); err != nil {
					return err
				}
			}
			if err := c.declare(v); err != nil {
				return err
			}
		}
	case *ExprStmt:
		return c.expr(x.X)
	case *Block:
		for _, st := range x.Stmts {
			if err := c.stmt(st); err != nil {
				return err
			}
		}
	case *If:
		if err := c.expr(x.Cond); err != nil {
			return err
		}
		if err := c.stmt(x.Then); err != nil {
			return err
		}
		return c.stmt(x.Else)
	case *While:
		if err := c.expr(x.Cond); err != nil {
			return err
		}
		return c.stmt(x.Body)
	case *For:
		if err := c.stmt(x.Init); err != nil {
			return err
		}
		if x.Cond != nil {
			if err := c.expr(x.Cond); err != nil {
				return err
			}
		}
		if x.Post != nil {
			if err := c.expr(x.Post); err != nil {
				return err
			}
		}
		return c.stmt(x.Body)
	case *Read:
		if err := c.port(x.Port, PortIn, x.Pos); err != nil {
			return err
		}
		if err := c.expr(x.Dest); err != nil {
			return err
		}
		if id, ok := x.Dest.(*Ident); ok {
			if sz, isArr := c.arrays[id.Name]; isArr {
				if sz < x.NItems {
					return fmt.Errorf("%v: array %s (size %d) too small for %d items", x.Pos, id.Name, sz, x.NItems)
				}
			} else if x.NItems != 1 {
				return fmt.Errorf("%v: scalar destination %s requires nitems == 1", x.Pos, id.Name)
			}
		}
	case *Write:
		if err := c.port(x.Port, PortOut, x.Pos); err != nil {
			return err
		}
		if err := c.expr(x.Src); err != nil {
			return err
		}
		if id, ok := x.Src.(*Ident); ok {
			if sz, isArr := c.arrays[id.Name]; isArr && sz < x.NItems {
				return fmt.Errorf("%v: array %s (size %d) too small for %d items", x.Pos, id.Name, sz, x.NItems)
			}
			if _, isArr := c.arrays[id.Name]; !isArr && x.NItems != 1 {
				return fmt.Errorf("%v: scalar source %s requires nitems == 1", x.Pos, id.Name)
			}
		} else if x.NItems != 1 {
			return fmt.Errorf("%v: non-identifier source requires nitems == 1", x.Pos)
		}
	case *Select:
		for i := range x.Arms {
			a := &x.Arms[i]
			// SELECT can watch both directions; the port must exist.
			if c.proc.PortByName(a.Port) == nil {
				return fmt.Errorf("%v: undeclared port %s in SELECT", a.Pos, a.Port)
			}
			for _, st := range a.Body {
				if err := c.stmt(st); err != nil {
					return err
				}
			}
		}
	default:
		return fmt.Errorf("flowc: unhandled statement %T", s)
	}
	return nil
}

func (c *checker) expr(e Expr) error {
	switch x := e.(type) {
	case nil:
		return nil
	case *Ident:
		if !c.vars[x.Name] {
			return fmt.Errorf("%v: undeclared variable %s", x.Pos, x.Name)
		}
	case *IntLit:
	case *Binary:
		if err := c.expr(x.L); err != nil {
			return err
		}
		return c.expr(x.R)
	case *Unary:
		return c.expr(x.X)
	case *Assign:
		if err := c.expr(x.LHS); err != nil {
			return err
		}
		return c.expr(x.RHS)
	case *IncDec:
		return c.expr(x.X)
	case *Index:
		if err := c.expr(x.Arr); err != nil {
			return err
		}
		return c.expr(x.Idx)
	default:
		return fmt.Errorf("flowc: unhandled expression %T", e)
	}
	return nil
}

// CheckFile validates every process of a file and checks that process
// names are unique.
func CheckFile(f *File) error {
	seen := map[string]bool{}
	for _, p := range f.Processes {
		if seen[p.Name] {
			return fmt.Errorf("%v: duplicate process name %s", p.Pos, p.Name)
		}
		seen[p.Name] = true
		if err := Check(p); err != nil {
			return err
		}
	}
	return nil
}
