// Command pfcbench regenerates the paper's evaluation on the PFC video
// application: Figure 20 (-fig20), Table 1 (-table1) and Table 2
// (-table2); -all runs everything.
//
// Usage:
//
//	pfcbench [-fig20] [-table1] [-table2] [-all] [-frames N]
//	         [-explore-workers N] [-dist-workers N] [-dist-endpoint ep]
//	         [-dist-full-replicas] [-freeze-levels]
//	         [-cpuprofile f] [-memprofile f]
//
// -explore-workers parallelizes the schedule search's state-space
// exploration; -dist-workers instead shards it across worker OS
// processes (spawned locally, or awaited as external cmd/qssd
// processes at -dist-endpoint), each holding only its owned hash
// shards unless -dist-full-replicas restores the full-replica
// fallback. -freeze-levels moves closed exploration levels to on-disk
// delta segments (locally and in spawned workers). Results are
// byte-identical for every value of any of them. -cpuprofile/-memprofile write pprof profiles, so
// perf regressions can be diagnosed without editing source.
// Contradictory flag combinations (negative counts, -dist-endpoint
// without -dist-workers, both exploration strategies at once) are
// rejected with a usage error rather than silently clamped.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/profiling"
	"repro/internal/sim"
)

func main() {
	// MaybeWorker first: children re-executed by dist.SpawnLocal must
	// become workers, not rerun the benchmark.
	dist.MaybeWorker()
	// realMain so the profiling defers run before the process exits.
	os.Exit(realMain())
}

// validateFlags rejects contradictory or out-of-range combinations
// with a descriptive error instead of silently clamping.
func validateFlags(frames, exploreWorkers, distWorkers int, distEndpoint string, distFullReplicas, anyOutput bool) error {
	switch {
	case !anyOutput:
		return fmt.Errorf("nothing to do: pass -fig20, -table1, -table2 or -all")
	case frames < 1:
		return fmt.Errorf("-frames must be >= 1, got %d", frames)
	case exploreWorkers < 0:
		return fmt.Errorf("-explore-workers must be >= 0 (0 = auto budget), got %d", exploreWorkers)
	case distWorkers < 0:
		return fmt.Errorf("-dist-workers must be >= 0 (0 = no worker processes), got %d", distWorkers)
	case distEndpoint != "" && distWorkers == 0:
		return fmt.Errorf("-dist-endpoint requires -dist-workers >= 1 (how many workers to await)")
	case distWorkers > 0 && exploreWorkers > 1:
		return fmt.Errorf("-dist-workers and -explore-workers > 1 are contradictory: pick in-process or cross-process exploration")
	case distFullReplicas && distWorkers == 0:
		return fmt.Errorf("-dist-full-replicas requires -dist-workers >= 1 (it selects the worker replica mode)")
	}
	return nil
}

func realMain() (code int) {
	fig20 := flag.Bool("fig20", false, "regenerate Figure 20 (buffer-size sweep)")
	table1 := flag.Bool("table1", false, "regenerate Table 1 (frame-count sweep)")
	table2 := flag.Bool("table2", false, "regenerate Table 2 (code size)")
	all := flag.Bool("all", false, "regenerate everything")
	frames := flag.Int("frames", 10, "frames for Figure 20")
	exploreWorkers := flag.Int("explore-workers", 0, "goroutines for the schedule-search exploration (0 = auto budget)")
	distWorkers := flag.Int("dist-workers", 0, "worker OS processes sharding the exploration (0 = none)")
	distEndpoint := flag.String("dist-endpoint", "", "await externally started qssd workers at this endpoint instead of spawning")
	distFullReplicas := flag.Bool("dist-full-replicas", false, "fall back to full worker replicas instead of trimmed owned-shard ones")
	freezeLevels := flag.Bool("freeze-levels", false, "freeze closed exploration levels to on-disk delta segments")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if *all {
		*fig20, *table1, *table2 = true, true, true
	}
	if err := validateFlags(*frames, *exploreWorkers, *distWorkers, *distEndpoint, *distFullReplicas, *fig20 || *table1 || *table2); err != nil {
		fmt.Fprintln(os.Stderr, "pfcbench:", err)
		flag.Usage()
		return 2
	}
	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		return fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			if c := fatal(err); code == 0 {
				code = c
			}
		}
	}()
	if *freezeLevels && *distWorkers > 0 {
		// Spawned workers inherit the environment; externally started
		// qssd workers take -freeze-levels themselves.
		os.Setenv(dist.EnvFreeze, "1")
	}
	res, err := apps.SynthesizePFCWith(&core.Options{
		ExploreWorkers:   *exploreWorkers,
		DistWorkers:      *distWorkers,
		DistEndpoint:     *distEndpoint,
		DistFullReplicas: *distFullReplicas,
		FreezeLevels:     *freezeLevels,
		DisableCache:     true,
	})
	if err != nil {
		return fatal(err)
	}
	fmt.Printf("synthesized pfc: schedule %d nodes, %d segments, all channel bounds = 1\n\n",
		len(res.Schedules[0].Nodes), len(res.Tasks[0].Segments))
	if *fig20 {
		pts, err := sim.Figure20(res, *frames, []int{1, 2, 5, 10, 20, 50, 100})
		if err != nil {
			return fatal(err)
		}
		if err := sim.PrintFigure20(os.Stdout, pts); err != nil {
			return fatal(err)
		}
		fmt.Println()
	}
	if *table1 {
		rows, err := sim.Table1(res, []int{10, 50, 100, 500, 1000})
		if err != nil {
			return fatal(err)
		}
		if err := sim.PrintTable1(os.Stdout, rows); err != nil {
			return fatal(err)
		}
		fmt.Println()
	}
	if *table2 {
		if err := sim.PrintTable2(os.Stdout, sim.Table2(res)); err != nil {
			return fatal(err)
		}
	}
	return 0
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "pfcbench:", err)
	return 1
}
