// Command qssbatch generates a randomized corpus of FlowC applications
// and synthesizes them concurrently, reporting aggregate throughput —
// the scale-out driver for the quasi-static synthesis flow.
//
// Usage:
//
//	qssbatch [-n apps] [-seed N] [-workers N] [-explore-workers N]
//	         [-dist-workers N] [-dist-endpoint ep] [-freeze-levels]
//	         [-compare] [-cpuprofile f] [-memprofile f] [shape flags] [-v]
//	qssbatch -pnml net.pnml [-pnml ...] [-pnml-max-markings N]
//	         [-pnml-max-tokens N] [exploration flags] [-v]
//	qssbatch -emit-pnml dir [-n apps] [-seed N] [shape flags]
//
// -workers bounds the number of concurrent app syntheses (0 =
// GOMAXPROCS); -explore-workers additionally parallelizes each
// schedule search's state-space exploration (the second level of the
// parallelism model). -dist-workers instead shards each exploration
// across that many worker OS processes — spawned locally, or awaited
// as external cmd/qssd processes at -dist-endpoint — over one shared
// pool for the whole batch; results are byte-identical either way.
// Workers hold only their owned hash shards by default (per-worker
// memory ~1/N of the state space); -dist-full-replicas falls back to
// full worker replicas rebuilt from delta broadcasts.
// -freeze-levels moves closed exploration levels to on-disk delta
// segments (and, with -dist-workers, arms the same tier in spawned
// workers via QSS_DIST_FREEZE), trading thaw reads for a hot store
// that no longer scales with marking width — results are
// byte-identical. -compare additionally runs the serial baseline and
// prints the speedup. -cpuprofile/-memprofile write pprof profiles, so perf
// regressions can be diagnosed without editing source. Shape flags
// mirror corpus.Config; see internal/corpus.
//
// -pnml switches to interchange-net analysis: each named PNML document
// (ISO/IEC 15909-2 P/T subset, see internal/pnml and docs/PNML.md) is
// imported and explored — reachable states, deadlocks, place bounds
// and a fingerprint for cross-configuration comparison — instead of
// generating a corpus. The exploration flags (-explore-workers,
// -dist-workers, -dist-endpoint, -dist-full-replicas, -freeze-levels)
// compose with -pnml exactly as they do with synthesis; corpus-shape
// and synthesis flags do not and are rejected. -pnml-max-markings and
// -pnml-max-tokens bound the exploration (imported nets may be
// unbounded; a truncated report is the unboundedness witness).
//
// -emit-pnml generates the corpus and writes each app's linked system
// net as a PNML document into the given directory — the interchange
// producer side — without synthesizing schedules.
//
// Contradictory flag combinations (negative counts, -dist-endpoint
// without -dist-workers, -dist-workers together with -explore-workers
// parallelism, -pnml with corpus flags) are rejected with a usage
// error rather than silently clamped.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/pnml"
	"repro/internal/profiling"
)

func main() {
	// MaybeWorker first: children re-executed by dist.SpawnLocal must
	// become workers, not run another batch.
	dist.MaybeWorker()
	// realMain so the profiling defers run before the process exits.
	os.Exit(realMain())
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// batchFlags holds the scalar flags that need cross-validation.
// explicit records which flags the user actually set (from flag.Visit)
// so mode conflicts distinguish "passed -n" from "-n at its default".
type batchFlags struct {
	n                int
	workers          int
	exploreWorkers   int
	distWorkers      int
	distEndpoint     string
	distFullReplicas bool
	pnml             multiFlag
	pnmlMaxMarkings  int
	pnmlMaxTokens    int
	emitPNML         string
	explicit         map[string]bool
}

// corpusOnlyFlags have no meaning when -pnml switches the command to
// interchange-net analysis: the corpus shape, the app-level pool and
// the synthesis comparison all presuppose generated FlowC apps.
var corpusOnlyFlags = []string{
	"n", "seed", "workers", "compare", "emit-pnml",
	"pipelines", "stages", "fanout", "ops", "width", "choice", "select", "bounds",
}

// exploreFlags configure state-space exploration; -emit-pnml never
// explores, so combining them is a mistake worth flagging.
var exploreFlags = []string{
	"compare", "explore-workers", "dist-workers", "dist-endpoint",
	"dist-full-replicas", "freeze-levels",
}

// validate rejects contradictory or out-of-range combinations with a
// descriptive error instead of silently clamping.
func (f *batchFlags) validate() error {
	switch {
	case f.n < 0:
		return fmt.Errorf("-n must be >= 0, got %d", f.n)
	case f.workers < 0:
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", f.workers)
	case f.exploreWorkers < 0:
		return fmt.Errorf("-explore-workers must be >= 0 (0 = auto budget), got %d", f.exploreWorkers)
	case f.distWorkers < 0:
		return fmt.Errorf("-dist-workers must be >= 0 (0 = no worker processes), got %d", f.distWorkers)
	case f.distEndpoint != "" && f.distWorkers == 0:
		return fmt.Errorf("-dist-endpoint requires -dist-workers >= 1 (how many workers to await)")
	case f.distWorkers > 0 && f.exploreWorkers > 1:
		return fmt.Errorf("-dist-workers and -explore-workers > 1 are contradictory: pick in-process or cross-process exploration")
	case f.distFullReplicas && f.distWorkers == 0:
		return fmt.Errorf("-dist-full-replicas requires -dist-workers >= 1 (it selects the worker replica mode)")
	case f.pnmlMaxMarkings < 0:
		return fmt.Errorf("-pnml-max-markings must be >= 0 (0 = the explorer's default), got %d", f.pnmlMaxMarkings)
	case f.pnmlMaxTokens < 0:
		return fmt.Errorf("-pnml-max-tokens must be >= 0 (0 = no cap), got %d", f.pnmlMaxTokens)
	}
	if len(f.pnml) > 0 {
		for _, name := range corpusOnlyFlags {
			if f.explicit[name] {
				return fmt.Errorf("-pnml analyzes interchange nets, not a generated corpus: -%s does not apply", name)
			}
		}
	} else {
		for _, name := range []string{"pnml-max-markings", "pnml-max-tokens"} {
			if f.explicit[name] {
				return fmt.Errorf("-%s requires -pnml (it bounds the interchange-net exploration)", name)
			}
		}
	}
	if f.emitPNML != "" {
		for _, name := range exploreFlags {
			if f.explicit[name] {
				return fmt.Errorf("-emit-pnml only generates and exports nets, it never explores: -%s does not apply", name)
			}
		}
	}
	return nil
}

func realMain() (code int) {
	var bf batchFlags
	flag.IntVar(&bf.n, "n", 20, "number of corpus apps to generate")
	seed := flag.Int64("seed", 1, "master corpus seed")
	flag.IntVar(&bf.workers, "workers", 0, "concurrent app syntheses (0 = GOMAXPROCS)")
	flag.IntVar(&bf.exploreWorkers, "explore-workers", 1, "goroutines per schedule-search exploration (0 = auto budget)")
	flag.IntVar(&bf.distWorkers, "dist-workers", 0, "worker OS processes sharding each exploration (0 = none)")
	flag.StringVar(&bf.distEndpoint, "dist-endpoint", "", "await externally started qssd workers at this endpoint instead of spawning")
	flag.BoolVar(&bf.distFullReplicas, "dist-full-replicas", false, "fall back to full worker replicas instead of trimmed owned-shard ones")
	freezeLevels := flag.Bool("freeze-levels", false, "freeze closed exploration levels to on-disk delta segments")
	compare := flag.Bool("compare", false, "also run the serial baseline and report the speedup")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	verbose := flag.Bool("v", false, "print one line per app (with -pnml: per-place bounds)")
	flag.Var(&bf.pnml, "pnml", "analyze this PNML net instead of a corpus (repeatable)")
	flag.IntVar(&bf.pnmlMaxMarkings, "pnml-max-markings", 0, "marking budget for -pnml exploration (0 = the explorer's default)")
	flag.IntVar(&bf.pnmlMaxTokens, "pnml-max-tokens", 0, "per-place token cap for -pnml exploration (0 = none; required for unbounded nets)")
	flag.StringVar(&bf.emitPNML, "emit-pnml", "", "write each corpus app's system net as PNML into this directory and exit")

	cfg := corpus.DefaultConfig()
	flag.IntVar(&cfg.MaxPipelines, "pipelines", cfg.MaxPipelines, "max pipelines (tasks) per app")
	flag.IntVar(&cfg.MaxStages, "stages", cfg.MaxStages, "max stages per tree pipeline")
	flag.IntVar(&cfg.MaxFanOut, "fanout", cfg.MaxFanOut, "max fan-out per stage")
	flag.IntVar(&cfg.MaxOps, "ops", cfg.MaxOps, "max unrolled channel ops per edge")
	flag.IntVar(&cfg.MaxWidth, "width", cfg.MaxWidth, "max multi-rate width per op")
	flag.Float64Var(&cfg.ChoiceDensity, "choice", cfg.ChoiceDensity, "data-dependent tap probability per stage")
	flag.Float64Var(&cfg.SelectDensity, "select", cfg.SelectDensity, "SELECT-drain pipeline probability")
	flag.Float64Var(&cfg.BoundDensity, "bounds", cfg.BoundDensity, "explicit channel bound probability")
	flag.Parse()

	bf.explicit = map[string]bool{}
	flag.Visit(func(f *flag.Flag) { bf.explicit[f.Name] = true })
	if err := bf.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "qssbatch:", err)
		flag.Usage()
		return 2
	}

	if len(bf.pnml) > 0 {
		stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qssbatch:", err)
			return 2
		}
		defer func() {
			if err := stopProfiles(); err != nil {
				fmt.Fprintln(os.Stderr, "qssbatch:", err)
				if code == 0 {
					code = 2
				}
			}
		}()
		return runPNML(&bf, *freezeLevels, *verbose)
	}
	if bf.emitPNML != "" {
		return emitCorpusPNML(bf.emitPNML, *seed, bf.n, cfg)
	}

	apps := corpus.GenerateCorpus(*seed, bf.n, cfg)
	procs := 0
	for _, a := range apps {
		procs += a.Procs
	}
	fmt.Printf("corpus: %d apps, %d processes (seed %d)\n", len(apps), procs, *seed)

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qssbatch:", err)
		return 2
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "qssbatch:", err)
			if code == 0 {
				code = 2
			}
		}
	}()

	// The batch scales out over apps; the per-app source pool stays
	// serial so the app level and the frontier level are the only two
	// pools contending for cores.
	copt := &core.Options{Workers: 1, ExploreWorkers: bf.exploreWorkers, DisableCache: true, FreezeLevels: *freezeLevels}
	if bf.distWorkers > 0 {
		if *freezeLevels {
			// Spawned workers inherit the environment; externally
			// started qssd workers take -freeze-levels themselves.
			os.Setenv(dist.EnvFreeze, "1")
		}
		// One pool amortized over the whole batch (a dist pool is a
		// sequential resource, so the batch itself stays serial too).
		var (
			pool *dist.Pool
			err  error
		)
		if bf.distEndpoint != "" {
			fmt.Printf("awaiting %d qssd worker(s) at %s\n", bf.distWorkers, bf.distEndpoint)
			pool, err = dist.Listen(bf.distEndpoint, bf.distWorkers)
		} else {
			pool, err = dist.SpawnLocal(bf.distWorkers)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "qssbatch:", err)
			return 1
		}
		defer pool.Close()
		if bf.distFullReplicas {
			pool.SetFullReplicas(true)
		}
		copt.Dist = pool
		bf.workers = 1
	}

	run := func(w int, o *core.Options) *corpus.BatchResult {
		return corpus.RunBatch(context.Background(), apps, corpus.BatchOptions{Workers: w, Core: o})
	}

	var serial *corpus.BatchResult
	if *compare {
		// The -compare baseline is fully serial: no app pool, no
		// in-process frontier workers, no dist pool.
		serial = run(1, &core.Options{Workers: 1, ExploreWorkers: 1, DisableCache: true})
		report("serial", serial, *verbose)
	}
	br := run(bf.workers, copt)
	name := fmt.Sprintf("workers=%d", effectiveWorkers(bf.workers))
	if bf.distWorkers > 0 {
		name = fmt.Sprintf("dist-workers=%d", bf.distWorkers)
	}
	report(name, br, *verbose)
	if serial != nil && br.Elapsed > 0 {
		fmt.Printf("speedup: %.2fx\n", serial.Elapsed.Seconds()/br.Elapsed.Seconds())
	}
	if br.Failed > 0 {
		return 1
	}
	return 0
}

func effectiveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

func report(name string, br *corpus.BatchResult, verbose bool) {
	if verbose {
		for _, r := range br.Results {
			if r.Err != nil {
				fmt.Printf("  %-8s FAIL %v\n", r.App.Name, r.Err)
				continue
			}
			fmt.Printf("  %-8s %2d task(s) %6d nodes  %8s\n",
				r.App.Name, len(r.Res.Tasks), sumNodes(r.Res), r.Elapsed.Round(1000).String())
		}
	}
	fmt.Printf("%s: %d apps in %v — %.1f apps/s, %d schedules, %d tasks, %d search nodes, %d failed\n",
		name, len(br.Results), br.Elapsed.Round(1000000), br.Throughput(), br.Schedules, br.Tasks, br.NodesCreated, br.Failed)
}

func sumNodes(r *core.Result) int {
	n := 0
	for _, s := range r.Schedules {
		n += s.Stats.NodesCreated
	}
	return n
}

// runPNML analyzes each named interchange net: reachable states,
// deadlocks, place bounds and the cross-configuration fingerprint.
// One dist pool (when requested) is shared across all files, like the
// corpus batch shares its pool across apps.
func runPNML(bf *batchFlags, freeze, verbose bool) int {
	opt := pnml.AnalyzeOptions{
		MaxMarkings:       bf.pnmlMaxMarkings,
		MaxTokensPerPlace: bf.pnmlMaxTokens,
		Workers:           bf.exploreWorkers,
		FreezeLevels:      freeze,
	}
	if bf.distWorkers > 0 {
		if freeze {
			// Spawned workers inherit the environment; externally
			// started qssd workers take -freeze-levels themselves.
			os.Setenv(dist.EnvFreeze, "1")
		}
		var (
			pool *dist.Pool
			err  error
		)
		if bf.distEndpoint != "" {
			fmt.Printf("awaiting %d qssd worker(s) at %s\n", bf.distWorkers, bf.distEndpoint)
			pool, err = dist.Listen(bf.distEndpoint, bf.distWorkers)
		} else {
			pool, err = dist.SpawnLocal(bf.distWorkers)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "qssbatch:", err)
			return 1
		}
		defer pool.Close()
		if bf.distFullReplicas {
			pool.SetFullReplicas(true)
		}
		opt.Dist = pool
	}
	code := 0
	for i, path := range bf.pnml {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s ==\n", path)
		a, err := pnml.AnalyzeFile(path, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qssbatch:", err)
			code = 1
			continue
		}
		a.Report(os.Stdout, verbose)
	}
	return code
}

// emitCorpusPNML generates the corpus and exports each app's linked
// system net as a PNML document — the producer side of the
// interchange, so other tools (or a later qssbatch -pnml run) can
// consume the same nets.
func emitCorpusPNML(dir string, seed int64, n int, cfg corpus.Config) int {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "qssbatch:", err)
		return 1
	}
	apps := corpus.GenerateCorpus(seed, n, cfg)
	for _, app := range apps {
		net, err := core.SystemNet(app.FlowC, app.Spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qssbatch: %s: %v\n", app.Name, err)
			return 1
		}
		path := filepath.Join(dir, app.Name+".pnml")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qssbatch:", err)
			return 1
		}
		if err := pnml.Export(f, net); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "qssbatch: %s: %v\n", path, err)
			return 1
		}
		fmt.Printf("  %-8s -> %s (%d places, %d transitions)\n", app.Name, path, len(net.Places), len(net.Transitions))
	}
	fmt.Printf("exported %d nets to %s (seed %d)\n", len(apps), dir, seed)
	return 0
}
