package petri

import (
	mathbits "math/bits"
	"sort"
)

// Incremental enabled-ECS maintenance. Every exploration loop needs the
// set of ECSs enabled at each visited marking. Testing the full
// partition at every state costs O(|ECS| * |preset|) per state, yet
// firing one transition only changes the token count of the places on
// its (non-self-loop) arcs — so only ECSs whose presets intersect those
// places can change enablement status. The EnabledTracker precomputes a
// place -> ECS reverse index once per net and maintains per-marking
// enabled sets as bitsets: a child's set is its parent's set with the
// few touched ECSs re-evaluated.

// EnabledTracker maintains enabled-ECS bitsets incrementally across
// firings. Build one per (net, partition) pair with NewEnabledTracker;
// it is immutable afterwards and safe for concurrent use.
//
// Bitsets are []uint64 slices of Stride() words; bit i is ECS i of the
// partition the tracker was built with. Source ECSs have an empty
// preset, are always enabled, and are set by Init and never touched by
// Update.
type EnabledTracker struct {
	net    *Net
	part   []*ECS
	stride int
	ecsOf  []int32 // transition ID -> ECS index
	// touched[t] lists the ECS indexes whose enablement can change when
	// transition t fires: those with a preset arc on a place whose token
	// count t changes (self-loops change nothing and are excluded).
	touched [][]int32
}

// NewEnabledTracker builds the reverse index for the net under the
// given ECS partition (as returned by Net.ECSPartition).
func NewEnabledTracker(n *Net, part []*ECS) *EnabledTracker {
	tr := &EnabledTracker{
		net:    n,
		part:   part,
		stride: (len(part) + 63) / 64,
		ecsOf:  make([]int32, len(n.Transitions)),
	}
	for i := range tr.ecsOf {
		tr.ecsOf[i] = -1
	}
	placeECS := make([][]int32, len(n.Places))
	for _, e := range part {
		for _, t := range e.Trans {
			tr.ecsOf[t] = int32(e.Index)
		}
		// Equal-conflict: one member's preset is every member's preset.
		for _, a := range n.Transitions[e.Trans[0]].In {
			placeECS[a.Place] = append(placeECS[a.Place], int32(e.Index))
		}
	}
	tr.touched = make([][]int32, len(n.Transitions))
	seen := make([]bool, len(part))
	for _, t := range n.Transitions {
		var out []int32
		visit := func(p int) {
			for _, e := range placeECS[p] {
				if !seen[e] {
					seen[e] = true
					out = append(out, e)
				}
			}
		}
		for _, a := range t.In {
			if a.Weight != t.OutWeight(a.Place) {
				visit(a.Place)
			}
		}
		for _, a := range t.Out {
			if a.Weight != t.Weight(a.Place) {
				visit(a.Place)
			}
		}
		for _, e := range out {
			seen[e] = false
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		tr.touched[t.ID] = out
	}
	return tr
}

// Stride returns the bitset length in uint64 words.
func (tr *EnabledTracker) Stride() int { return tr.stride }

// NumECS returns the partition size the tracker was built with.
func (tr *EnabledTracker) NumECS() int { return len(tr.part) }

// ECSOf returns the partition index of the ECS containing transition t.
func (tr *EnabledTracker) ECSOf(t int) int { return int(tr.ecsOf[t]) }

// Touched returns the ECS indexes re-evaluated when t fires
// (diagnostics; callers must not mutate the slice).
func (tr *EnabledTracker) Touched(t int) []int32 { return tr.touched[t] }

// Init writes the enabled set of m into bits with a full partition
// scan — the once-per-root seeding of an exploration.
func (tr *EnabledTracker) Init(bits []uint64, m Marking) {
	for i := range bits[:tr.stride] {
		bits[i] = 0
	}
	for _, e := range tr.part {
		if e.Enabled(tr.net, m) {
			bits[e.Index>>6] |= 1 << (uint(e.Index) & 63)
		}
	}
}

// Update writes the enabled set of m into dst, where m was reached from
// a marking with enabled set src by firing transition t: only the ECSs
// touched by t are re-evaluated. dst and src must not overlap.
func (tr *EnabledTracker) Update(dst, src []uint64, t int, m Marking) {
	copy(dst[:tr.stride], src[:tr.stride])
	for _, ei := range tr.touched[t] {
		w, b := ei>>6, uint64(1)<<(uint(ei)&63)
		if tr.part[ei].Enabled(tr.net, m) {
			dst[w] |= b
		} else {
			dst[w] &^= b
		}
	}
}

// HasBit reports whether bit i of the bitset is set.
func HasBit(bits []uint64, i int) bool {
	return bits[i>>6]&(1<<(uint(i)&63)) != 0
}

// ForEachMaskedBit calls fn with each set bit index of bits&mask in
// ascending order — the canonical walk over an enabled-ECS bitset
// filtered by a fireable/allowed mask. The exploration engines keep
// specialized inlined forms of this loop where a closure per state
// would show up in their allocation budgets; new consumers (the dist
// worker's expansion) should use this one.
func ForEachMaskedBit(bits, mask []uint64, fn func(i int)) {
	for w := range bits {
		x := bits[w] & mask[w]
		for x != 0 {
			b := mathbits.TrailingZeros64(x)
			x &= x - 1
			fn(w*64 + b)
		}
	}
}
