// Package codegen turns schedules into software tasks (Section 6 of the
// paper): the schedule is decomposed into threads and shared code
// segments, state variables are selected from the places that
// discriminate the residual marking, and a sequential C task (the ISR)
// is synthesized with goto chaining between segments.
//
// Generate is the structural half: it walks a sched.Schedule, splits it
// into threads at await nodes (thread.go), merges shared tails into
// reusable code segments (segment.go) and returns a Task. Synthesize is
// the textual half: it renders a Task into a single C source —
// deterministic byte-for-byte output, which is what the golden files,
// the dist determinism matrix and the server smoke test all pin.
package codegen

import (
	"fmt"
	"sort"

	"repro/internal/petri"
	"repro/internal/sched"
)

// SegNode is a node of a code segment: one equal conflict set, with one
// out-edge per member transition. Each edge either continues inside the
// segment or ends at a leaf that jumps to another segment (or returns).
type SegNode struct {
	ECS   *petri.ECS
	Edges []SegEdge
}

// SegEdge is one transition of the node's ECS together with its
// continuation.
type SegEdge struct {
	Trans int
	Child *SegNode // in-segment continuation; nil at a leaf
	Leaf  *Leaf    // set when Child is nil
}

// Leaf terminates a path of a code segment: a state-dependent jump to the
// root of another segment, or a return to the scheduler when the thread
// is complete (next ECS is the task's source).
type Leaf struct {
	// States lists the (marking, next ECS index) pairs observed at the
	// corresponding schedule nodes, deterministically ordered.
	States []LeafState
	// Update is the state-variable delta of the whole root-to-leaf path,
	// keyed by place ID (only state variables appear).
	Update map[int]int
}

// LeafState is one observed continuation.
type LeafState struct {
	Marking petri.Marking
	NextECS int // ECS index in the net partition; -1 encodes "return"
}

// Segment is a rooted tree of SegNodes. Its label (used for C labels and
// gotos) is the concatenation of the root ECS transition names.
type Segment struct {
	Index int
	Root  *SegNode
	Label string
}

// Task is the software task generated for one uncontrollable source.
type Task struct {
	Name      string
	Net       *petri.Net
	Source    int
	Schedule  *sched.Schedule
	Segments  []*Segment       // Segments[0] is cs1 (contains the source ECS)
	SegByECS  map[int]*Segment // ECS index -> segment whose root is that ECS
	StateVars []int            // place IDs used as state variables, ascending
	Part      []*petri.ECS     // the net's ECS partition
	ECSIdx    []int            // transition -> ECS index
}

// quotient node bookkeeping during construction.
type quotNode struct {
	ecs  *petri.ECS
	reps []*sched.Node // schedule nodes carrying this ECS
	// succ[t] = set of next ECS indices observed when firing t.
	succ map[int]map[int]bool
	// states[t] = ordered (marking, nextECS) pairs when firing t.
	states map[int][]LeafState
	inDeg  int // number of distinct (E,t) predecessor edges
}

// Generate builds the task for a schedule.
func Generate(s *sched.Schedule, name string) (*Task, error) {
	net := s.Net
	part := net.ECSPartition()
	idx := petri.ECSIndex(part, len(net.Transitions))
	srcECS := idx[s.Source]

	// Build the ECS quotient of the schedule.
	quot := map[int]*quotNode{}
	getQ := func(e int) *quotNode {
		q := quot[e]
		if q == nil {
			q = &quotNode{ecs: part[e], succ: map[int]map[int]bool{}, states: map[int][]LeafState{}}
			quot[e] = q
		}
		return q
	}
	for _, n := range s.Nodes {
		e := idx[n.Edges[0].Trans]
		q := getQ(e)
		q.reps = append(q.reps, n)
		for _, ed := range n.Edges {
			nextE := idx[ed.To.Edges[0].Trans]
			if q.succ[ed.Trans] == nil {
				q.succ[ed.Trans] = map[int]bool{}
			}
			q.succ[ed.Trans][nextE] = true
			q.states[ed.Trans] = append(q.states[ed.Trans], LeafState{Marking: ed.To.Marking, NextECS: nextE})
		}
	}
	// Deduplicate states and order them deterministically.
	for _, q := range quot {
		for t := range q.states {
			q.states[t] = dedupStates(q.states[t])
		}
	}

	// In-degrees over distinct (E, t) quotient edges.
	for _, q := range quot {
		for t := range q.succ {
			for nextE := range q.succ[t] {
				getQ(nextE).inDeg++
			}
		}
	}

	// Segment roots: the source ECS; any ECS with >= 2 predecessor
	// edges; any ECS reached by a state-dependent edge.
	isRoot := map[int]bool{srcECS: true}
	ecsKeys := sortedKeys(quot)
	for _, e := range ecsKeys {
		q := quot[e]
		if q.inDeg >= 2 {
			isRoot[e] = true
		}
		for t := range q.succ {
			if len(q.succ[t]) > 1 {
				for nextE := range q.succ[t] {
					isRoot[nextE] = true
				}
			}
		}
	}

	task := &Task{
		Name:     name,
		Net:      net,
		Source:   s.Source,
		Schedule: s,
		SegByECS: map[int]*Segment{},
		Part:     part,
		ECSIdx:   idx,
	}

	// Select state variables before building leaves so update deltas can
	// be restricted to them.
	task.StateVars = selectStateVars(s, quot, isRoot, srcECS)

	// Grow segments from each root, inlining single-predecessor
	// deterministic continuations. Cycle safety: an ECS already placed
	// in the current segment path becomes a root retroactively; we
	// resolve this by marking any back-edge target as a root first.
	markCycleRoots(quot, isRoot, srcECS)

	var rootList []int
	for e := range isRoot {
		if quot[e] != nil {
			rootList = append(rootList, e)
		}
	}
	sort.Ints(rootList)
	// cs1 first.
	for i, e := range rootList {
		if e == srcECS && i != 0 {
			rootList[0], rootList[i] = rootList[i], rootList[0]
		}
	}

	built := map[int]*SegNode{}
	for _, e := range rootList {
		seg := &Segment{Index: len(task.Segments), Label: ecsLabel(net, part[e])}
		seg.Root = buildSegTree(task, quot, isRoot, e, built, srcECS)
		task.Segments = append(task.Segments, seg)
		task.SegByECS[e] = seg
	}
	if len(task.Segments) == 0 || task.SegByECS[srcECS] == nil {
		return nil, fmt.Errorf("codegen: schedule for %s produced no entry segment", name)
	}
	// The entry segment must be first.
	if task.Segments[0] != task.SegByECS[srcECS] {
		for i, sg := range task.Segments {
			if sg == task.SegByECS[srcECS] {
				task.Segments[0], task.Segments[i] = task.Segments[i], task.Segments[0]
			}
		}
		for i, sg := range task.Segments {
			sg.Index = i
		}
	}
	computeUpdates(task)
	return task, nil
}

func dedupStates(in []LeafState) []LeafState {
	sort.Slice(in, func(i, j int) bool {
		if c := in[i].Marking.Compare(in[j].Marking); c != 0 {
			return c < 0
		}
		return in[i].NextECS < in[j].NextECS
	})
	var out []LeafState
	for i, st := range in {
		if i > 0 && out[len(out)-1].Marking.Equal(st.Marking) && out[len(out)-1].NextECS == st.NextECS {
			continue
		}
		out = append(out, st)
	}
	return out
}

func sortedKeys(m map[int]*quotNode) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// markCycleRoots walks the quotient graph from the source ECS and marks
// the target of every back edge as a segment root so segments stay
// acyclic trees.
func markCycleRoots(quot map[int]*quotNode, isRoot map[int]bool, srcECS int) {
	state := map[int]int{} // 0 unvisited, 1 on stack, 2 done
	var dfs func(e int)
	dfs = func(e int) {
		state[e] = 1
		q := quot[e]
		for _, t := range sortedIntKeys(q.succ) {
			for _, nextE := range sortedBoolKeys(q.succ[t]) {
				switch state[nextE] {
				case 1:
					isRoot[nextE] = true
				case 0:
					dfs(nextE)
				}
			}
		}
		state[e] = 2
	}
	dfs(srcECS)
}

func sortedIntKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedBoolKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// buildSegTree builds the segment tree rooted at ECS e. A continuation is
// inlined when the edge is deterministic (single next ECS), the next ECS
// is not a segment root, and it has not been placed elsewhere.
func buildSegTree(task *Task, quot map[int]*quotNode, isRoot map[int]bool, e int, built map[int]*SegNode, srcECS int) *SegNode {
	q := quot[e]
	node := &SegNode{ECS: q.ecs}
	built[e] = node
	for _, t := range q.ecs.Trans {
		states := q.states[t]
		succ := q.succ[t]
		var edge SegEdge
		edge.Trans = t
		if len(succ) == 1 {
			nextE := sortedBoolKeys(succ)[0]
			if !isRoot[nextE] && built[nextE] == nil {
				edge.Child = buildSegTree(task, quot, isRoot, nextE, built, srcECS)
				node.Edges = append(node.Edges, edge)
				continue
			}
		}
		// Leaf: jump decided by the residual state.
		leaf := &Leaf{}
		for _, st := range states {
			next := st.NextECS
			if next == srcECS {
				next = -1 // return to the scheduler (await node reached)
			}
			leaf.States = append(leaf.States, LeafState{Marking: st.Marking, NextECS: next})
		}
		edge.Leaf = leaf
		node.Edges = append(node.Edges, edge)
	}
	return node
}

// selectStateVars picks the places used as state variables: places whose
// token count is both updated by some involved transition and needed to
// discriminate a state-dependent jump (the intersection of Section
// 6.4.1), always including places that distinguish markings mapped to
// different continuations.
func selectStateVars(s *sched.Schedule, quot map[int]*quotNode, isRoot map[int]bool, srcECS int) []int {
	updated := map[int]bool{}
	for _, tid := range s.InvolvedTransitions() {
		t := s.Net.Transitions[tid]
		for _, a := range t.In {
			if t.OutWeight(a.Place) != a.Weight {
				updated[a.Place] = true
			}
		}
		for _, a := range t.Out {
			if t.Weight(a.Place) != a.Weight {
				updated[a.Place] = true
			}
		}
	}
	needed := map[int]bool{}
	for _, e := range sortedKeys(quot) {
		q := quot[e]
		for _, t := range sortedIntKeys(q.states) {
			states := q.states[t]
			if len(states) < 2 {
				continue
			}
			// Discriminate states with different continuations.
			for i := 0; i < len(states); i++ {
				for j := i + 1; j < len(states); j++ {
					if states[i].NextECS == states[j].NextECS {
						continue
					}
					// Greedy: first updated place where they differ.
					for p := range states[i].Marking {
						if states[i].Marking[p] != states[j].Marking[p] && updated[p] {
							needed[p] = true
							break
						}
					}
				}
			}
		}
	}
	var out []int
	for p := range needed {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// computeUpdates fills each leaf's Update map with the path delta
// restricted to state variables.
func computeUpdates(task *Task) {
	sv := map[int]bool{}
	for _, p := range task.StateVars {
		sv[p] = true
	}
	for _, seg := range task.Segments {
		var walk func(n *SegNode, delta map[int]int)
		walk = func(n *SegNode, delta map[int]int) {
			for _, e := range n.Edges {
				d := map[int]int{}
				for k, v := range delta {
					d[k] = v
				}
				t := task.Net.Transitions[e.Trans]
				for _, a := range t.In {
					if sv[a.Place] {
						d[a.Place] -= a.Weight
					}
				}
				for _, a := range t.Out {
					if sv[a.Place] {
						d[a.Place] += a.Weight
					}
				}
				if e.Child != nil {
					walk(e.Child, d)
					continue
				}
				upd := map[int]int{}
				for k, v := range d {
					if v != 0 {
						upd[k] = v
					}
				}
				e.Leaf.Update = upd
			}
		}
		walk(seg.Root, map[int]int{})
	}
}

// ecsLabel builds the C label of a segment: the concatenation of the
// transition names of its root ECS.
func ecsLabel(n *petri.Net, e *petri.ECS) string {
	label := ""
	for _, t := range e.Trans {
		label += sanitizeLabel(n.Transitions[t].Name)
	}
	return label
}

func sanitizeLabel(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// SegmentCount returns the number of code segments.
func (t *Task) SegmentCount() int { return len(t.Segments) }

// NodeCount returns the total number of SegNodes across all segments —
// the paper's code-size proxy: each distinct ECS appears exactly once.
func (t *Task) NodeCount() int {
	total := 0
	for _, seg := range t.Segments {
		var count func(n *SegNode) int
		count = func(n *SegNode) int {
			c := 1
			for _, e := range n.Edges {
				if e.Child != nil {
					c += count(e.Child)
				}
			}
			return c
		}
		total += count(seg.Root)
	}
	return total
}
