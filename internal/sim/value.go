// Package sim provides the evaluation substrate of the reproduction: a
// deterministic cycle-cost interpreter with two executors — the
// 4-processes-as-4-tasks round-robin baseline and the synthesized
// single-task executor — plus the cost-model presets and the code-size
// estimator used to regenerate Figure 20 and Tables 1 and 2.
//
// The paper measured a real R3000 board; this package substitutes a
// calibrated cost model that exercises the same code paths (context
// switches and channel traffic versus inlined sequential code), so the
// relative results — who wins and by roughly what factor — are
// preserved even though absolute cycle counts are synthetic.
package sim

import (
	"fmt"

	"repro/internal/flowc"
)

// Cell is one variable: a scalar is a slice of length 1.
type Cell []int64

// Scope is a variable environment. Process locals become per-process
// scopes after linking (the paper uniquifies names instead; the effect
// is identical).
type Scope struct {
	vars map[string]Cell
}

// NewScope returns an empty scope.
func NewScope() *Scope { return &Scope{vars: map[string]Cell{}} }

// Declare creates a variable. Size 0 declares a scalar.
func (s *Scope) Declare(name string, size int) {
	if size <= 0 {
		size = 1
	}
	s.vars[name] = make(Cell, size)
}

// Cell returns the storage of a variable, declaring a scalar on first
// use (FlowC requires declarations, but hand-written fragments in tests
// may skip them).
func (s *Scope) Cell(name string) Cell {
	c, ok := s.vars[name]
	if !ok {
		c = make(Cell, 1)
		s.vars[name] = c
	}
	return c
}

// Get returns the scalar value of a variable.
func (s *Scope) Get(name string) int64 { return s.Cell(name)[0] }

// Set assigns the scalar value of a variable.
func (s *Scope) Set(name string, v int64) { s.Cell(name)[0] = v }

// lvalue is a resolved assignable location.
type lvalue struct {
	cell Cell
	idx  int
}

func (l lvalue) get() int64 { return l.cell[l.idx] }

func (l lvalue) set(v int64) { l.cell[l.idx] = v }

// Machine evaluates expressions and plain (port-free) statements while
// charging cycles to a cost model.
type Machine struct {
	Cost   *CostModel
	Cycles int64
	// Steps counts executed statements (a loop-safety budget).
	Steps    int64
	MaxSteps int64
}

// NewMachine returns a machine with the given cost model and a default
// step budget of 100 million statements.
func NewMachine(cost *CostModel) *Machine {
	return &Machine{Cost: cost, MaxSteps: 100_000_000}
}

// Charge adds cycles.
func (m *Machine) Charge(c int64) { m.Cycles += c }

func (m *Machine) step() error {
	m.Steps++
	if m.Steps > m.MaxSteps {
		return fmt.Errorf("sim: statement budget exhausted (%d)", m.MaxSteps)
	}
	return nil
}

// Eval evaluates an expression in a scope, charging per-operator costs.
func (m *Machine) Eval(sc *Scope, e flowc.Expr) (int64, error) {
	switch x := e.(type) {
	case *flowc.IntLit:
		return x.Val, nil
	case *flowc.Ident:
		return sc.Get(x.Name), nil
	case *flowc.Index:
		lv, err := m.lval(sc, x)
		if err != nil {
			return 0, err
		}
		return lv.get(), nil
	case *flowc.Unary:
		v, err := m.Eval(sc, x.X)
		if err != nil {
			return 0, err
		}
		m.Charge(m.Cost.AluOp)
		switch x.Op {
		case flowc.TokNot:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		case flowc.TokMinus:
			return -v, nil
		}
		return 0, fmt.Errorf("sim: bad unary operator %v", x.Op)
	case *flowc.Binary:
		l, err := m.Eval(sc, x.L)
		if err != nil {
			return 0, err
		}
		// Short-circuit logicals.
		switch x.Op {
		case flowc.TokAndAnd:
			m.Charge(m.Cost.AluOp)
			if l == 0 {
				return 0, nil
			}
			r, err := m.Eval(sc, x.R)
			if err != nil {
				return 0, err
			}
			return b2i(r != 0), nil
		case flowc.TokOrOr:
			m.Charge(m.Cost.AluOp)
			if l != 0 {
				return 1, nil
			}
			r, err := m.Eval(sc, x.R)
			if err != nil {
				return 0, err
			}
			return b2i(r != 0), nil
		}
		r, err := m.Eval(sc, x.R)
		if err != nil {
			return 0, err
		}
		m.Charge(m.Cost.AluOp)
		switch x.Op {
		case flowc.TokPlus:
			return l + r, nil
		case flowc.TokMinus:
			return l - r, nil
		case flowc.TokStar:
			return l * r, nil
		case flowc.TokSlash:
			if r == 0 {
				return 0, fmt.Errorf("sim: division by zero")
			}
			return l / r, nil
		case flowc.TokPercent:
			if r == 0 {
				return 0, fmt.Errorf("sim: modulo by zero")
			}
			return l % r, nil
		case flowc.TokEq:
			return b2i(l == r), nil
		case flowc.TokNeq:
			return b2i(l != r), nil
		case flowc.TokLt:
			return b2i(l < r), nil
		case flowc.TokLe:
			return b2i(l <= r), nil
		case flowc.TokGt:
			return b2i(l > r), nil
		case flowc.TokGe:
			return b2i(l >= r), nil
		}
		return 0, fmt.Errorf("sim: bad binary operator %v", x.Op)
	case *flowc.Assign:
		lv, err := m.lval(sc, x.LHS)
		if err != nil {
			return 0, err
		}
		r, err := m.Eval(sc, x.RHS)
		if err != nil {
			return 0, err
		}
		m.Charge(m.Cost.Assign)
		switch x.Op {
		case flowc.TokAssign:
			lv.set(r)
		case flowc.TokPlusEq:
			lv.set(lv.get() + r)
		case flowc.TokMinusEq:
			lv.set(lv.get() - r)
		default:
			return 0, fmt.Errorf("sim: bad assignment operator %v", x.Op)
		}
		return lv.get(), nil
	case *flowc.IncDec:
		lv, err := m.lval(sc, x.X)
		if err != nil {
			return 0, err
		}
		m.Charge(m.Cost.Assign)
		old := lv.get()
		if x.Op == flowc.TokInc {
			lv.set(old + 1)
		} else {
			lv.set(old - 1)
		}
		if x.Post {
			return old, nil
		}
		return lv.get(), nil
	}
	return 0, fmt.Errorf("sim: cannot evaluate %T", e)
}

func (m *Machine) lval(sc *Scope, e flowc.Expr) (lvalue, error) {
	switch x := e.(type) {
	case *flowc.Ident:
		return lvalue{cell: sc.Cell(x.Name)}, nil
	case *flowc.Index:
		id, ok := x.Arr.(*flowc.Ident)
		if !ok {
			return lvalue{}, fmt.Errorf("sim: array expression must be an identifier")
		}
		iv, err := m.Eval(sc, x.Idx)
		if err != nil {
			return lvalue{}, err
		}
		cell := sc.Cell(id.Name)
		if iv < 0 || iv >= int64(len(cell)) {
			return lvalue{}, fmt.Errorf("sim: index %d out of range for %s (size %d)", iv, id.Name, len(cell))
		}
		return lvalue{cell: cell, idx: int(iv)}, nil
	}
	return lvalue{}, fmt.Errorf("sim: %T is not assignable", e)
}

// EvalBool evaluates an expression as a truth value.
func (m *Machine) EvalBool(sc *Scope, e flowc.Expr) (bool, error) {
	v, err := m.Eval(sc, e)
	return v != 0, err
}

// ExecPlain executes a statement that performs no port operations
// (fragment bodies and plain control flow).
func (m *Machine) ExecPlain(sc *Scope, s flowc.Stmt) error {
	if err := m.step(); err != nil {
		return err
	}
	switch x := s.(type) {
	case nil:
		return nil
	case *flowc.DeclStmt:
		for _, v := range x.Vars {
			sc.Declare(v.Name, v.ArraySize)
			if v.Init != nil {
				iv, err := m.Eval(sc, v.Init)
				if err != nil {
					return err
				}
				m.Charge(m.Cost.Assign)
				sc.Cell(v.Name)[0] = iv
			}
		}
		return nil
	case *flowc.ExprStmt:
		_, err := m.Eval(sc, x.X)
		return err
	case *flowc.Block:
		for _, st := range x.Stmts {
			if err := m.ExecPlain(sc, st); err != nil {
				return err
			}
		}
		return nil
	case *flowc.If:
		m.Charge(m.Cost.Branch)
		c, err := m.EvalBool(sc, x.Cond)
		if err != nil {
			return err
		}
		if c {
			return m.ExecPlain(sc, x.Then)
		}
		return m.ExecPlain(sc, x.Else)
	case *flowc.While:
		for {
			m.Charge(m.Cost.Branch)
			c, err := m.EvalBool(sc, x.Cond)
			if err != nil {
				return err
			}
			if !c {
				return nil
			}
			if err := m.ExecPlain(sc, x.Body); err != nil {
				return err
			}
			if err := m.step(); err != nil {
				return err
			}
		}
	case *flowc.For:
		if x.Init != nil {
			if err := m.ExecPlain(sc, x.Init); err != nil {
				return err
			}
		}
		for {
			if x.Cond != nil {
				m.Charge(m.Cost.Branch)
				c, err := m.EvalBool(sc, x.Cond)
				if err != nil {
					return err
				}
				if !c {
					return nil
				}
			}
			if err := m.ExecPlain(sc, x.Body); err != nil {
				return err
			}
			if x.Post != nil {
				if _, err := m.Eval(sc, x.Post); err != nil {
					return err
				}
			}
			if err := m.step(); err != nil {
				return err
			}
		}
	}
	return fmt.Errorf("sim: ExecPlain cannot execute %T (port operation in plain context?)", s)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
