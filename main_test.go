package repro

import (
	"os"
	"testing"

	"repro/internal/dist"
)

// TestMain routes re-executed children of dist.SpawnLocal into the
// worker loop: the distributed-exploration benchmarks spawn this very
// test binary as their worker processes.
func TestMain(m *testing.M) {
	dist.MaybeWorker()
	os.Exit(m.Run())
}
