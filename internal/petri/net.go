// Package petri implements the class of weighted place/transition Petri
// nets used as the intermediate representation of the quasi-static
// scheduling flow (Cortadella et al., DAC 2000).
//
// A net is a bipartite graph of places and transitions with weighted arcs.
// The package provides marking algebra (enabling, firing, covering),
// equal-conflict-set (ECS) computation, choice-place classification
// (equal / unique choice, the UCPN test), place degrees and the
// irrelevant-marking criterion of Section 4.4 of the paper, incidence
// matrices, a textual exchange format and DOT export.
//
// The exploration substrate shared by the reachability utilities and
// the scheduler's engines also lives here: MarkingStore hash-conses
// markings behind dense MarkIDs, EnabledTracker maintains per-marking
// enabled-ECS bitsets incrementally (firing a transition re-evaluates
// only the ECSs whose presets intersect the places whose counts
// changed), and RunFrontier + ShardedStore implement the
// level-synchronous parallel frontier — the frontier half of the
// two-level (sources x frontier) parallelism model — with state
// numbering byte-identical to the serial loops for every worker count.
package petri

import (
	"fmt"
	"sort"
)

// TransKind distinguishes ordinary transitions from the environment
// source/sink transitions introduced by linking.
type TransKind int

const (
	// TransNormal is an internal computation transition.
	TransNormal TransKind = iota
	// TransSourceUnc is an uncontrollable environment source: the
	// environment decides when it fires; each such transition defines
	// one task of the synthesized software.
	TransSourceUnc
	// TransSourceCtl is a controllable environment source: the scheduler
	// may fire it to request further input.
	TransSourceCtl
	// TransSink consumes tokens sent to the environment.
	TransSink
)

// String implements fmt.Stringer.
func (k TransKind) String() string {
	switch k {
	case TransNormal:
		return "normal"
	case TransSourceUnc:
		return "source-unc"
	case TransSourceCtl:
		return "source-ctl"
	case TransSink:
		return "sink"
	}
	return fmt.Sprintf("TransKind(%d)", int(k))
}

// PlaceKind classifies places by their origin in the FlowC specification.
type PlaceKind int

const (
	// PlaceInternal is a program-counter place of a sequential process:
	// exactly one internal place of each process is marked at a time.
	PlaceInternal PlaceKind = iota
	// PlacePort is a dangling port place before linking.
	PlacePort
	// PlaceChannel is a merged port place representing a communication
	// channel after linking.
	PlaceChannel
	// PlaceComplement is the complement place of a bounded channel: its
	// token count is bound minus the channel occupancy, so a blocking
	// write is an ordinary enabling condition.
	PlaceComplement
)

// String implements fmt.Stringer.
func (k PlaceKind) String() string {
	switch k {
	case PlaceInternal:
		return "internal"
	case PlacePort:
		return "port"
	case PlaceChannel:
		return "channel"
	case PlaceComplement:
		return "complement"
	}
	return fmt.Sprintf("PlaceKind(%d)", int(k))
}

// Arc is one weighted arc endpoint: the identified place and the arc
// weight (always >= 1).
type Arc struct {
	Place  int
	Weight int
}

// Place is a net place. ID is its index in Net.Places.
type Place struct {
	ID      int
	Name    string
	Kind    PlaceKind
	Initial int    // tokens under the initial marking
	Bound   int    // user-specified bound; 0 means unbounded
	Process string // owning process name; "" for merged channels
	// Cond is the payload attached by the compiler to choice places
	// representing data-dependent control: typically an expression AST.
	Cond any
}

// Transition is a net transition. ID is its index in Net.Transitions.
type Transition struct {
	ID      int
	Name    string
	Kind    TransKind
	Process string // owning process; "" for environment transitions
	Label   string // branch label, e.g. "T"/"F" for a data choice
	// Code is the payload attached by the compiler: the fragment of
	// sequential code executed when the transition fires.
	Code any

	In  []Arc // preset arcs (places consumed from)
	Out []Arc // postset arcs (places produced to)
}

// Net is a weighted Petri net. Places and transitions are identified by
// their slice index; arcs are stored on the transitions.
type Net struct {
	Name        string
	Places      []*Place
	Transitions []*Transition

	succCache map[int][]int // place -> successor transition IDs
	predCache map[int][]int // place -> predecessor transition IDs
}

// New returns an empty net with the given name.
func New(name string) *Net {
	return &Net{Name: name}
}

// AddPlace appends a place and returns it. Initial is the token count of
// the initial marking.
func (n *Net) AddPlace(name string, kind PlaceKind, initial int) *Place {
	p := &Place{ID: len(n.Places), Name: name, Kind: kind, Initial: initial}
	n.Places = append(n.Places, p)
	n.invalidate()
	return p
}

// AddTransition appends a transition and returns it.
func (n *Net) AddTransition(name string, kind TransKind) *Transition {
	t := &Transition{ID: len(n.Transitions), Name: name, Kind: kind}
	n.Transitions = append(n.Transitions, t)
	n.invalidate()
	return t
}

// AddArc adds a weighted arc from place p to transition t (consumption).
// Adding a second arc between the same pair accumulates the weight.
func (n *Net) AddArc(p *Place, t *Transition, w int) {
	if w <= 0 {
		panic(fmt.Sprintf("petri: non-positive arc weight %d (%s -> %s)", w, p.Name, t.Name))
	}
	for i := range t.In {
		if t.In[i].Place == p.ID {
			t.In[i].Weight += w
			n.invalidate()
			return
		}
	}
	t.In = append(t.In, Arc{Place: p.ID, Weight: w})
	n.invalidate()
}

// AddArcTP adds a weighted arc from transition t to place p (production).
func (n *Net) AddArcTP(t *Transition, p *Place, w int) {
	if w <= 0 {
		panic(fmt.Sprintf("petri: non-positive arc weight %d (%s -> %s)", w, t.Name, p.Name))
	}
	for i := range t.Out {
		if t.Out[i].Place == p.ID {
			t.Out[i].Weight += w
			n.invalidate()
			return
		}
	}
	t.Out = append(t.Out, Arc{Place: p.ID, Weight: w})
	n.invalidate()
}

// AddSelfLoop adds a read arc emulated as a consume/produce self loop of
// weight w: the transition is enabled only when p holds at least w tokens
// but firing leaves p unchanged. Used for SELECT availability tests.
func (n *Net) AddSelfLoop(p *Place, t *Transition, w int) {
	n.AddArc(p, t, w)
	n.AddArcTP(t, p, w)
}

func (n *Net) invalidate() {
	n.succCache = nil
	n.predCache = nil
}

// Warm eagerly builds the lazily-computed adjacency caches. The caches
// are built on first use and are not synchronized, so callers that read
// the net from multiple goroutines (e.g. concurrent schedule searches)
// must call Warm once before fanning out. After Warm, all read-only
// methods are safe for concurrent use as long as the net is not mutated.
func (n *Net) Warm() {
	n.buildCaches()
}

func (n *Net) buildCaches() {
	if n.succCache != nil {
		return
	}
	n.succCache = make(map[int][]int, len(n.Places))
	n.predCache = make(map[int][]int, len(n.Places))
	for _, t := range n.Transitions {
		for _, a := range t.In {
			n.succCache[a.Place] = append(n.succCache[a.Place], t.ID)
		}
		for _, a := range t.Out {
			n.predCache[a.Place] = append(n.predCache[a.Place], t.ID)
		}
	}
	for _, m := range []map[int][]int{n.succCache, n.predCache} {
		for k := range m {
			sort.Ints(m[k])
		}
	}
}

// Successors returns the IDs of transitions consuming from place id, in
// ascending order.
func (n *Net) Successors(id int) []int {
	n.buildCaches()
	return n.succCache[id]
}

// Predecessors returns the IDs of transitions producing into place id, in
// ascending order.
func (n *Net) Predecessors(id int) []int {
	n.buildCaches()
	return n.predCache[id]
}

// PlaceByName returns the first place with the given name, or nil.
func (n *Net) PlaceByName(name string) *Place {
	for _, p := range n.Places {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// TransitionByName returns the first transition with the given name, or nil.
func (n *Net) TransitionByName(name string) *Transition {
	for _, t := range n.Transitions {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// InitialMarking returns the initial marking of the net.
func (n *Net) InitialMarking() Marking {
	m := make(Marking, len(n.Places))
	for i, p := range n.Places {
		m[i] = p.Initial
	}
	return m
}

// Weight returns F(p, t), the weight of the arc from place p to
// transition t, or 0 if there is no such arc.
func (t *Transition) Weight(place int) int {
	for _, a := range t.In {
		if a.Place == place {
			return a.Weight
		}
	}
	return 0
}

// OutWeight returns F(t, p), the weight of the arc from transition t to
// place p, or 0 if there is no such arc.
func (t *Transition) OutWeight(place int) int {
	for _, a := range t.Out {
		if a.Place == place {
			return a.Weight
		}
	}
	return 0
}

// IsSource reports whether the transition has an empty effective preset,
// i.e. F(p,t) == 0 for all places. Environment source transitions are
// sources by construction.
func (t *Transition) IsSource() bool {
	return len(t.In) == 0
}

// IsUncontrollable reports whether t is an uncontrollable environment
// source transition.
func (t *Transition) IsUncontrollable() bool { return t.Kind == TransSourceUnc }

// Validate checks structural invariants: arc endpoints in range, positive
// weights, positive initial markings, and source kinds consistent with
// presets. It returns the first violation found.
func (n *Net) Validate() error {
	for _, p := range n.Places {
		if p.Initial < 0 {
			return fmt.Errorf("place %s: negative initial marking %d", p.Name, p.Initial)
		}
		if p.Bound < 0 {
			return fmt.Errorf("place %s: negative bound %d", p.Name, p.Bound)
		}
	}
	for _, t := range n.Transitions {
		for _, a := range append(append([]Arc{}, t.In...), t.Out...) {
			if a.Place < 0 || a.Place >= len(n.Places) {
				return fmt.Errorf("transition %s: arc references place %d out of range", t.Name, a.Place)
			}
			if a.Weight <= 0 {
				return fmt.Errorf("transition %s: non-positive arc weight %d", t.Name, a.Weight)
			}
		}
		if (t.Kind == TransSourceUnc || t.Kind == TransSourceCtl) && len(t.In) != 0 {
			return fmt.Errorf("transition %s: source kind %v but non-empty preset", t.Name, t.Kind)
		}
	}
	return nil
}

// String returns a short human-readable summary.
func (n *Net) String() string {
	return fmt.Sprintf("net %s: %d places, %d transitions", n.Name, len(n.Places), len(n.Transitions))
}
