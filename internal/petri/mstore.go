package petri

import "iter"

// Hash-consed marking storage. Every hot loop of the scheduler — the
// marking-graph engine, the EP/EP_ECS tree searches and the bounded
// reachability explorer — needs to answer "have I seen this marking
// before?" millions of times. Keying maps with Marking.Key() built each
// marking a fresh formatted string (the dominant cost of a cold
// synthesis, ~60% of CPU in profiles); the MarkingStore instead interns
// each distinct marking exactly once behind a compact MarkID, using an
// FNV-1a hash over the token vector and an open-addressing table, so
// identity checks collapse to integer compares and lookups never
// allocate.

// MarkID identifies an interned marking within one MarkingStore. IDs are
// dense: the store assigns 0, 1, 2, ... in interning order, so a MarkID
// doubles as an index into any per-marking side table.
type MarkID uint32

// NoMark is the sentinel for "no marking" in APIs that may fail to
// resolve one.
const NoMark = MarkID(^uint32(0))

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// MarkingStore interns token vectors of a fixed length (one slot per
// place of the net). The zero value is not usable — construct with
// NewMarkingStore.
//
// Concurrency: interning and FreezeThrough mutate the store and must be
// serialized by the caller. Read-only use (At, Lookup, Len, All) is
// safe from any number of goroutines once no more mutations occur —
// e.g. a ReachResult.Store may be read concurrently after Explore
// returns; At on a frozen id memoizes thawed vectors behind the tier's
// own lock. The schedule-search engines keep one private store per
// search, so the concurrent per-source searches of the PR-1 worker pool
// never contend on one.
type MarkingStore struct {
	places    int
	tokens    []int    // hot arena; id occupies tokens[(id-frozenEnd)*places:...] for id >= frozenEnd
	hashes    []uint64 // hash per interned marking, reused on growth; never frozen
	table     []uint32 // open addressing, entry = id+1, 0 = empty; never frozen
	mask      uint32
	aliased   bool        // two distinct interned markings share a 64-bit hash
	frozenEnd int         // ids [0, frozenEnd) live in the frozen tier, not the arena
	frozen    *frozenTier // nil until EnableFreeze (see freeze.go)
}

// NewMarkingStore returns an empty store for markings over the given
// number of places.
func NewMarkingStore(places int) *MarkingStore {
	return newMarkingStoreCap(places, 1<<10)
}

// newMarkingStoreCap builds a store with an explicit initial table size
// (a power of two). Tests use tiny tables to force probe collisions.
func newMarkingStoreCap(places, tableSize int) *MarkingStore {
	if tableSize < 2 || tableSize&(tableSize-1) != 0 {
		panic("petri: marking store table size must be a power of two >= 2")
	}
	return &MarkingStore{
		places: places,
		table:  make([]uint32, tableSize),
		mask:   uint32(tableSize - 1),
	}
}

// Len returns the number of distinct markings interned.
func (s *MarkingStore) Len() int { return len(s.hashes) }

// Places returns the token-vector length the store was built for.
func (s *MarkingStore) Places() int { return s.places }

// At returns the interned marking as a read-only view: callers must not
// mutate it. Hot ids resolve to a view into the store's arena; frozen
// ids (below FrozenLen) are reconstructed on demand from the delta
// segment, memoized by the tier's thaw cache. Either way the view stays
// valid across later Intern and FreezeThrough calls — growth and
// freezing retire backing arrays but never mutate retired contents — so
// it is safe to hold one across further interning.
func (s *MarkingStore) At(id MarkID) Marking {
	i := (int(id) - s.frozenEnd) * s.places
	if i < 0 {
		return s.frozen.thaw(s, id)
	}
	return Marking(s.tokens[i : i+s.places : i+s.places])
}

// HashMarking is FNV-1a folded over the token words — the hash every
// marking store (plain and sharded) keys on. Deterministic across
// processes, so interning order (and everything derived from it) is
// reproducible. Exposed so pipelines that shard or batch markings can
// hash once and hand the value to InternHashed/LookupHashed.
func HashMarking(m Marking) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range m {
		h ^= uint64(v)
		h *= fnvPrime64
	}
	return h
}

// HashAt returns the stored HashMarking value of an interned marking —
// the store keeps every hash for table growth, so shard-ownership
// decisions over interned states (frontier partitioning across workers)
// never rehash the vector.
func (s *MarkingStore) HashAt(id MarkID) uint64 { return s.hashes[id] }

// Lookup returns the MarkID of m if it is interned. It never allocates.
func (s *MarkingStore) Lookup(m Marking) (MarkID, bool) {
	return s.LookupHashed(m, HashMarking(m))
}

// LookupHashed is Lookup with a caller-precomputed HashMarking value.
func (s *MarkingStore) LookupHashed(m Marking, h uint64) (MarkID, bool) {
	for slot := uint32(h) & s.mask; ; slot = (slot + 1) & s.mask {
		e := s.table[slot]
		if e == 0 {
			return NoMark, false
		}
		id := MarkID(e - 1)
		if s.hashes[id] == h && s.At(id).Equal(m) {
			return id, true
		}
	}
}

// LookupHash resolves a bare 64-bit HashMarking value to the interned
// marking carrying it, without the vector compare Lookup performs — the
// distributed coordinator's fast path for classifying a successor whose
// hash a worker shipped (dist protocol 3), saving the re-fire that
// producing the vector would cost. The probe trusts hash equality, so
// it is exact only while HashAliased is false: callers must fall back
// to vector-exact resolution once the store is known to hold two
// distinct markings with one hash, and accept the ~len·2⁻⁶⁴ per-probe
// chance that a marking NOT in the store aliases one that is (the
// hash-compaction caveat documented in package internal/dist).
func (s *MarkingStore) LookupHash(h uint64) (MarkID, bool) {
	for slot := uint32(h) & s.mask; ; slot = (slot + 1) & s.mask {
		e := s.table[slot]
		if e == 0 {
			return NoMark, false
		}
		if id := MarkID(e - 1); s.hashes[id] == h {
			return id, true
		}
	}
}

// HashAliased reports whether interning has ever stored two distinct
// markings sharing one 64-bit hash — the condition under which
// LookupHash is ambiguous. Detection is exact, not probabilistic: an
// aliasing pair probes through the same table run (same home slot), so
// the later Intern always walks past the earlier entry; grow()
// reinserts from home slots and preserves the property.
func (s *MarkingStore) HashAliased() bool { return s.aliased }

// Intern returns the MarkID of m, interning a copy of the vector if it
// was not present. The second result reports whether the marking is
// new. Interning an already-present marking performs no allocation.
func (s *MarkingStore) Intern(m Marking) (MarkID, bool) {
	return s.InternHashed(m, HashMarking(m))
}

// InternHashed is Intern with a caller-precomputed HashMarking value —
// the batched exploration pipeline hashes each successor once on a
// worker and interns it later without rehashing.
func (s *MarkingStore) InternHashed(m Marking, h uint64) (MarkID, bool) {
	if len(m) != s.places {
		panic("petri: marking length does not match store")
	}
	slot := uint32(h) & s.mask
	for ; ; slot = (slot + 1) & s.mask {
		e := s.table[slot]
		if e == 0 {
			break
		}
		id := MarkID(e - 1)
		if s.hashes[id] == h {
			if s.At(id).Equal(m) {
				return id, false
			}
			s.aliased = true
		}
	}
	id := MarkID(len(s.hashes))
	s.tokens = append(s.tokens, m...)
	s.hashes = append(s.hashes, h)
	s.table[slot] = uint32(id) + 1
	if len(s.hashes)*4 >= len(s.table)*3 {
		s.grow()
	}
	return id, true
}

// grow doubles the table and reinserts every id using the stored
// hashes; the arena is untouched.
func (s *MarkingStore) grow() {
	nt := make([]uint32, len(s.table)*2)
	mask := uint32(len(nt) - 1)
	for id, h := range s.hashes {
		slot := uint32(h) & mask
		for nt[slot] != 0 {
			slot = (slot + 1) & mask
		}
		nt[slot] = uint32(id) + 1
	}
	s.table = nt
	s.mask = mask
}

// All iterates over (MarkID, Marking) pairs in interning order. The
// yielded markings are read-only views (see At).
func (s *MarkingStore) All() iter.Seq2[MarkID, Marking] {
	return func(yield func(MarkID, Marking) bool) {
		for id := 0; id < s.Len(); id++ {
			if !yield(MarkID(id), s.At(MarkID(id))) {
				return
			}
		}
	}
}

// MemBytes estimates the store's resident memory footprint: hot arena,
// hash, table and frozen-offset backing arrays at their capacities.
// Diagnostics only — gates and cross-process comparison use Mem.
func (s *MarkingStore) MemBytes() int {
	n := cap(s.tokens)*8 + cap(s.hashes)*8 + cap(s.table)*4
	if s.frozen != nil {
		n += cap(s.frozen.offs) * 8
	}
	return n
}

// Mem is THE store-memory accounting: exact live byte counts at slice
// lengths, independent of append growth policy. Both figures are pure
// functions of the interned marking sequence and the frozen boundary,
// so distributed memory accounting (the per-worker replica-size and
// frozen-store gates in CI) can compare values across processes and
// machines byte-for-byte. Every other store-size figure in the tree
// (dist.WorkerMem.StoreBytes, the server's worker-memory gauge, search
// stats) derives from this one method.
func (s *MarkingStore) Mem() StoreMem {
	m := StoreMem{
		HotBytes: int64(len(s.tokens))*8 + int64(len(s.hashes))*8 + int64(len(s.table))*4,
	}
	if s.frozen != nil {
		m.HotBytes += int64(len(s.frozen.offs)) * 8
		m.FrozenBytes = s.frozen.size
	}
	return m
}

// ArenaBytes returns Mem().HotBytes — the store's live resident byte
// count. For an all-hot store this is the historical arena+hashes+table
// figure; with a frozen tier it excludes the evicted vectors (counted
// in Mem().FrozenBytes) and includes the segment-offset table.
func (s *MarkingStore) ArenaBytes() int {
	return int(s.Mem().HotBytes)
}
