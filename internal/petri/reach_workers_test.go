package petri

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// ringsNet builds `pipes` independent token rings of `stages` places
// each: the reachable space is the product of the ring positions
// (stages^pipes states), a scalable shape for exercising the frontier.
func ringsNet(pipes, stages int) *Net {
	n := New(fmt.Sprintf("rings-%dx%d", pipes, stages))
	for p := 0; p < pipes; p++ {
		var ps []*Place
		for s := 0; s < stages; s++ {
			init := 0
			if s == 0 {
				init = 1
			}
			ps = append(ps, n.AddPlace(fmt.Sprintf("r%d_%d", p, s), PlaceInternal, init))
		}
		for s := 0; s < stages; s++ {
			t := n.AddTransition(fmt.Sprintf("t%d_%d", p, s), TransNormal)
			n.AddArc(ps[s], t, 1)
			n.AddArcTP(t, ps[(s+1)%stages], 1)
		}
	}
	return n
}

// snapshotReach flattens a ReachResult for exact comparison.
func snapshotReach(r *ReachResult) (markings []Marking, edges [][]ReachEdge, clipped []bool, truncated bool) {
	for _, m := range r.Store.All() {
		markings = append(markings, m.Clone())
	}
	return markings, r.Edges, r.Clipped, r.Truncated
}

func assertSameReach(t *testing.T, name string, a, b *ReachResult) {
	t.Helper()
	am, ae, ac, at := snapshotReach(a)
	bm, be, bc, bt := snapshotReach(b)
	if !reflect.DeepEqual(am, bm) {
		t.Fatalf("%s: marking numbering differs (%d vs %d states)", name, len(am), len(bm))
	}
	if !reflect.DeepEqual(ae, be) {
		t.Fatalf("%s: edges differ", name)
	}
	if !reflect.DeepEqual(ac, bc) || at != bt {
		t.Fatalf("%s: clip flags differ (truncated %v vs %v)", name, at, bt)
	}
}

// TestExploreWorkersDeterminism: the parallel frontier must produce a
// ReachResult byte-identical to the serial loop — same state numbering,
// same edges, same clip flags — for every worker count, on full
// explorations, budget-clipped ones and token-capped ones. Runs under
// -race via the Makefile.
func TestExploreWorkersDeterminism(t *testing.T) {
	cases := []struct {
		name string
		net  *Net
		opt  ExploreOptions
	}{
		{"rings-full", ringsNet(3, 4), ExploreOptions{MaxMarkings: 1000}},
		{"rings-budget", ringsNet(3, 5), ExploreOptions{MaxMarkings: 60}},
		{"simple-capped", simpleNet(t), ExploreOptions{FireSources: true, MaxTokensPerPlace: 4}},
		{"choice", choiceNet(t), ExploreOptions{FireSources: true, MaxTokensPerPlace: 3}},
	}
	for _, c := range cases {
		serial := c.net.Explore(c.opt)
		for _, w := range []int{1, 4, 8} {
			opt := c.opt
			opt.Workers = w
			assertSameReach(t, fmt.Sprintf("%s/workers=%d", c.name, w), serial, c.net.Explore(opt))
		}
		// The full-scan ablation must agree too.
		opt := c.opt
		opt.DisableTracker = true
		assertSameReach(t, c.name+"/full-scan", serial, c.net.Explore(opt))
	}
}

// TestExploreWorkersRandomNets sweeps seeded random nets (including
// source-driven infinite spaces under caps) across worker counts.
func TestExploreWorkersRandomNets(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 120; i++ {
		n := randomNet(rng)
		opt := ExploreOptions{
			FireSources:       i%2 == 0,
			MaxTokensPerPlace: 3 + i%3,
			MaxMarkings:       200 + i%57,
		}
		serial := n.Explore(opt)
		for _, w := range []int{2, 5} {
			po := opt
			po.Workers = w
			assertSameReach(t, fmt.Sprintf("random-%d/workers=%d", i, w), serial, n.Explore(po))
		}
		fo := opt
		fo.DisableTracker = true
		assertSameReach(t, fmt.Sprintf("random-%d/full-scan", i), serial, n.Explore(fo))
	}
}
