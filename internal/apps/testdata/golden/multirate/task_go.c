/* Task task_go: quasi-statically scheduled for source go. */
#include "multirate.data.h"

int Line;
int src_p0;
int BUF_Line[10]; int BUF_Line_r, BUF_Line_w;
int BUF_Eol;
int BUF_Ack;
int src_g;
int src_a;
int src_j;
int src_buf[10];
int snk_v;
int snk_e;

void task_go_init(void)
{
  Line = 0;
  src_p0 = 1;
  BUF_Line_r = 0; BUF_Line_w = 0;
  BUF_Eol = 0;
  BUF_Ack = 0;
}

void task_go_ISR(void)
{
  go:
  go();
  READ_DATA(go, &src_g, 1);
  for (src_j = 0; (src_j < 10); src_j++)
    src_buf[src_j] = (src_g + src_j);
  { int k_; for (k_ = 0; k_ < 10; k_++) { BUF_Line[BUF_Line_w] = src_buf[k_]; BUF_Line_w = (BUF_Line_w + 1) % 10; } }
  Line = Line + 10;
  src_p0 = src_p0 - 1;
  goto snk_t0;
  snk_t0:
  { int k_; for (k_ = 0; k_ < 1; k_++) { snk_v[k_] = BUF_Line[BUF_Line_r]; BUF_Line_r = (BUF_Line_r + 1) % 10; } }
  WRITE_DATA(out, (snk_v * snk_v), 1);
  /* deliver out to the environment */
  Line = Line - 1;
  goto snk_t6;
  snk_t6:
  if (Line == 0 && src_p0 == 1) {
    return;
  }
  else if (Line == 0 && src_p0 == 0) {
    goto src_t1;
  }
  else {
    goto snk_t0;
  }
  src_t1:
  BUF_Eol = 0;
  snk_e = BUF_Eol;
  BUF_Ack = 0;
  src_a = BUF_Ack;
  src_p0 = src_p0 + 1;
  goto snk_t6;
}
