// Command benchdiff is the benchmark-regression gate of the CI
// pipeline. It runs the tier-1 benchmarks, writes a dated
// BENCH_<date>.json snapshot (ns/op, B/op, allocs/op and custom metrics
// such as corpus apps/s), and compares both ns/op and allocs/op against
// the committed baseline JSON: a regression beyond the tolerance on
// either dimension fails the run (and with it `make ci`).
//
// Usage:
//
//	go run ./cmd/benchdiff                  # gate against bench_baseline.json
//	go run ./cmd/benchdiff -update          # rewrite the baseline in place
//	go run ./cmd/benchdiff -tolerance 0.5   # loosen the time gate
//	go run ./cmd/benchdiff -alloc-tolerance 0.5  # loosen the alloc gate
//
// Each benchmark runs -count times and the best (minimum) ns/op is
// compared, which filters scheduler noise on shared machines the same
// way benchstat's min-based deltas do.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// BenchResult is the recorded outcome of one benchmark.
type BenchResult struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the schema of BENCH_<date>.json and of the baseline.
type Snapshot struct {
	Date       string                 `json:"date"`
	GoVersion  string                 `json:"go_version"`
	Benchmarks map[string]BenchResult `json:"benchmarks"`
}

func main() {
	var (
		benchRe        = flag.String("bench", "BenchmarkSynthesisPFC$|BenchmarkCorpusSerial$|BenchmarkExploreLarge", "benchmarks to run (go test -bench regexp)")
		benchtime      = flag.String("benchtime", "3x", "go test -benchtime per run")
		count          = flag.Int("count", 2, "runs per benchmark; the fastest is kept")
		pkg            = flag.String("pkg", ".", "package holding the benchmarks")
		baseline       = flag.String("baseline", "bench_baseline.json", "committed baseline JSON")
		out            = flag.String("out", "", "snapshot path (default BENCH_<date>.json)")
		tolerance      = flag.Float64("tolerance", 0.20, "allowed ns/op regression fraction")
		allocTolerance = flag.Float64("alloc-tolerance", 0.20, "allowed allocs/op regression fraction")
		update         = flag.Bool("update", false, "rewrite the baseline with this run instead of gating")
	)
	flag.Parse()

	cur, err := runBenchmarks(*benchRe, *benchtime, *count, *pkg)
	if err != nil {
		fatal(err)
	}
	if len(cur.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmarks matched %q", *benchRe))
	}

	outPath := *out
	if outPath == "" {
		outPath = "BENCH_" + cur.Date + ".json"
	}
	if err := writeJSON(outPath, cur); err != nil {
		fatal(err)
	}
	fmt.Printf("benchdiff: wrote %s (%d benchmarks)\n", outPath, len(cur.Benchmarks))

	if *update {
		if err := writeJSON(*baseline, cur); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: baseline %s updated\n", *baseline)
		return
	}

	base, err := readBaseline(*baseline)
	if err != nil {
		fatal(fmt.Errorf("%w (run with -update to create it)", err))
	}
	if failed := gate(base, cur, *tolerance, *allocTolerance); failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

// runBenchmarks shells out to go test and folds repeated runs of the
// same benchmark to the fastest observation.
func runBenchmarks(benchRe, benchtime string, count int, pkg string) (*Snapshot, error) {
	args := []string{"test", "-run", "^$", "-bench", benchRe, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count), pkg}
	fmt.Printf("benchdiff: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w\n%s", err, buf.String())
	}
	snap := &Snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		Benchmarks: map[string]BenchResult{},
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		name, res, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := snap.Benchmarks[name]; seen && prev.NsPerOp <= res.NsPerOp {
			continue
		}
		snap.Benchmarks[name] = res
	}
	return snap, sc.Err()
}

// benchName matches "BenchmarkFoo" or "BenchmarkFoo/sub-8" at the start
// of a benchmark result line; the trailing -P GOMAXPROCS suffix is
// stripped so baselines survive machine changes.
var benchName = regexp.MustCompile(`^(Benchmark\S*?)(-\d+)?$`)

// parseBenchLine decodes one `go test -bench` output line:
//
//	BenchmarkSynthesisPFC  5  49338658 ns/op  57957161 B/op  4095 allocs/op
//	BenchmarkCorpusSerial  1  72763526 ns/op  3.298 apps/s  ...
func parseBenchLine(line string) (string, BenchResult, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", BenchResult{}, false
	}
	m := benchName.FindStringSubmatch(f[0])
	if m == nil {
		return "", BenchResult{}, false
	}
	res := BenchResult{Metrics: map[string]float64{}}
	seenNs := false
	// Fields come in (value, unit) pairs after the iteration count.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", BenchResult{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
			seenNs = true
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			res.Metrics[unit] = v
		}
	}
	if !seenNs {
		return "", BenchResult{}, false
	}
	if len(res.Metrics) == 0 {
		res.Metrics = nil
	}
	return m[1], res, true
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func readBaseline(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &s, nil
}

// gate prints a comparison table and reports whether any gated
// benchmark regressed beyond the tolerances. ns/op and allocs/op are
// failing dimensions (an allocation regression on a hot path is a real
// regression even when a fast machine hides the time cost); B/op and
// custom metrics are informational.
func gate(base, cur *Snapshot, tolerance, allocTolerance float64) (failed bool) {
	fmt.Printf("benchdiff: baseline %s (%s) vs current (%s), tolerance %.0f%% ns/op, %.0f%% allocs/op\n",
		base.Date, base.GoVersion, cur.GoVersion, tolerance*100, allocTolerance*100)
	for name, b := range base.Benchmarks {
		c, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Printf("  %-40s MISSING from current run\n", name)
			failed = true
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		status := "ok"
		if delta > tolerance {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("  %-40s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			name, b.NsPerOp, c.NsPerOp, delta*100, status)
		if b.AllocsPerOp > 0 && c.AllocsPerOp > 0 {
			adelta := (c.AllocsPerOp - b.AllocsPerOp) / b.AllocsPerOp
			astatus := "ok"
			if adelta > allocTolerance {
				astatus = "REGRESSION"
				failed = true
			}
			fmt.Printf("  %-40s %12.0f -> %12.0f allocs/op %+6.1f%%  %s\n",
				"", b.AllocsPerOp, c.AllocsPerOp, adelta*100, astatus)
		}
	}
	if failed {
		fmt.Println("benchdiff: FAIL — ns/op or allocs/op regressed beyond tolerance (rerun on an idle machine, or refresh the baseline with -update if the change is intended)")
	} else {
		fmt.Println("benchdiff: PASS")
	}
	return failed
}
