// Command pfcbench regenerates the paper's evaluation on the PFC video
// application: Figure 20 (-fig20), Table 1 (-table1) and Table 2
// (-table2); -all runs everything.
//
// Usage:
//
//	pfcbench [-fig20] [-table1] [-table2] [-all] [-frames N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/sim"
)

func main() {
	fig20 := flag.Bool("fig20", false, "regenerate Figure 20 (buffer-size sweep)")
	table1 := flag.Bool("table1", false, "regenerate Table 1 (frame-count sweep)")
	table2 := flag.Bool("table2", false, "regenerate Table 2 (code size)")
	all := flag.Bool("all", false, "regenerate everything")
	frames := flag.Int("frames", 10, "frames for Figure 20")
	flag.Parse()
	if *all {
		*fig20, *table1, *table2 = true, true, true
	}
	if !*fig20 && !*table1 && !*table2 {
		flag.Usage()
		os.Exit(2)
	}
	res, err := apps.SynthesizePFC()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("synthesized pfc: schedule %d nodes, %d segments, all channel bounds = 1\n\n",
		len(res.Schedules[0].Nodes), len(res.Tasks[0].Segments))
	if *fig20 {
		pts, err := sim.Figure20(res, *frames, []int{1, 2, 5, 10, 20, 50, 100})
		if err != nil {
			fatal(err)
		}
		if err := sim.PrintFigure20(os.Stdout, pts); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *table1 {
		rows, err := sim.Table1(res, []int{10, 50, 100, 500, 1000})
		if err != nil {
			fatal(err)
		}
		if err := sim.PrintTable1(os.Stdout, rows); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *table2 {
		if err := sim.PrintTable2(os.Stdout, sim.Table2(res)); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pfcbench:", err)
	os.Exit(1)
}
