package flowc

import (
	"fmt"
	"strings"
)

// FormatExpr renders an expression as C source text.
func FormatExpr(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *IntLit:
		return fmt.Sprintf("%d", x.Val)
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", FormatExpr(x.L), x.Op, FormatExpr(x.R))
	case *Unary:
		return fmt.Sprintf("%s%s", x.Op, FormatExpr(x.X))
	case *Assign:
		return fmt.Sprintf("%s %s %s", FormatExpr(x.LHS), x.Op, FormatExpr(x.RHS))
	case *IncDec:
		if x.Post {
			return fmt.Sprintf("%s%s", FormatExpr(x.X), x.Op)
		}
		return fmt.Sprintf("%s%s", x.Op, FormatExpr(x.X))
	case *Index:
		return fmt.Sprintf("%s[%s]", FormatExpr(x.Arr), FormatExpr(x.Idx))
	case nil:
		return ""
	}
	return fmt.Sprintf("/*?expr %T*/", e)
}

// FormatStmt renders a statement as indented C source text. indent is the
// number of leading levels (two spaces each).
func FormatStmt(s Stmt, indent int) string {
	var sb strings.Builder
	writeStmt(&sb, s, indent)
	return sb.String()
}

func pad(sb *strings.Builder, indent int) {
	for i := 0; i < indent; i++ {
		sb.WriteString("  ")
	}
}

func writeStmt(sb *strings.Builder, s Stmt, indent int) {
	switch x := s.(type) {
	case *DeclStmt:
		pad(sb, indent)
		sb.WriteString("int ")
		for i, v := range x.Vars {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(v.Name)
			if v.ArraySize > 0 {
				fmt.Fprintf(sb, "[%d]", v.ArraySize)
			}
			if v.Init != nil {
				sb.WriteString(" = ")
				sb.WriteString(FormatExpr(v.Init))
			}
		}
		sb.WriteString(";\n")
	case *ExprStmt:
		pad(sb, indent)
		sb.WriteString(FormatExpr(x.X))
		sb.WriteString(";\n")
	case *Block:
		pad(sb, indent)
		sb.WriteString("{\n")
		for _, st := range x.Stmts {
			writeStmt(sb, st, indent+1)
		}
		pad(sb, indent)
		sb.WriteString("}\n")
	case *If:
		pad(sb, indent)
		fmt.Fprintf(sb, "if (%s)\n", FormatExpr(x.Cond))
		writeStmt(sb, x.Then, indent+1)
		if x.Else != nil {
			pad(sb, indent)
			sb.WriteString("else\n")
			writeStmt(sb, x.Else, indent+1)
		}
	case *While:
		pad(sb, indent)
		fmt.Fprintf(sb, "while (%s)\n", FormatExpr(x.Cond))
		writeStmt(sb, x.Body, indent+1)
	case *For:
		pad(sb, indent)
		init := ""
		if x.Init != nil {
			init = strings.TrimSuffix(strings.TrimSpace(FormatStmt(x.Init, 0)), ";\n")
			init = strings.TrimSuffix(init, ";")
		}
		fmt.Fprintf(sb, "for (%s; %s; %s)\n", init, FormatExpr(x.Cond), FormatExpr(x.Post))
		writeStmt(sb, x.Body, indent+1)
	case *Read:
		pad(sb, indent)
		fmt.Fprintf(sb, "READ_DATA(%s, %s, %d);\n", x.Port, FormatExpr(x.Dest), x.NItems)
	case *Write:
		pad(sb, indent)
		fmt.Fprintf(sb, "WRITE_DATA(%s, %s, %d);\n", x.Port, FormatExpr(x.Src), x.NItems)
	case *Select:
		pad(sb, indent)
		sb.WriteString("switch (SELECT(")
		for i, a := range x.Arms {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(sb, "%s, %d", a.Port, a.NItems)
		}
		sb.WriteString(")) {\n")
		for i, a := range x.Arms {
			pad(sb, indent)
			fmt.Fprintf(sb, "case %d:\n", i)
			for _, st := range a.Body {
				writeStmt(sb, st, indent+1)
			}
			pad(sb, indent+1)
			sb.WriteString("break;\n")
		}
		pad(sb, indent)
		sb.WriteString("}\n")
	case nil:
		// An absent statement (e.g. the empty-statement body of
		// `for (;;);`) must survive the round trip: print the empty
		// statement, not nothing — a loop header with no statement after
		// it does not reparse.
		pad(sb, indent)
		sb.WriteString(";\n")
	default:
		pad(sb, indent)
		fmt.Fprintf(sb, "/*?stmt %T*/\n", s)
	}
}

// FormatProcess renders a whole process declaration as FlowC source.
func FormatProcess(p *Process) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "PROCESS %s (", p.Name)
	for i, pt := range p.Ports {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s DPORT %s", pt.Dir, pt.Name)
	}
	sb.WriteString(")\n")
	writeStmt(&sb, p.Body, 0)
	return sb.String()
}
