// Package flowc implements the FlowC specification language of the
// paper: C-like sequential processes extended with port communication
// primitives READ_DATA / WRITE_DATA and the SELECT construct.
//
// The package provides a lexer, AST, recursive-descent parser, semantic
// checker and pretty printer. Compilation to Petri nets lives in
// internal/compile.
package flowc

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokString

	// Punctuation and operators.
	TokLParen   // (
	TokRParen   // )
	TokLBrace   // {
	TokRBrace   // }
	TokLBracket // [
	TokRBracket // ]
	TokComma    // ,
	TokSemi     // ;
	TokColon    // :
	TokAmp      // &
	TokAssign   // =
	TokPlusEq   // +=
	TokMinusEq  // -=
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokPercent  // %
	TokEq       // ==
	TokNeq      // !=
	TokLt       // <
	TokLe       // <=
	TokGt       // >
	TokGe       // >=
	TokAndAnd   // &&
	TokOrOr     // ||
	TokNot      // !
	TokInc      // ++
	TokDec      // --

	// Keywords.
	TokProcess // PROCESS
	TokIn      // In
	TokOut     // Out
	TokDPort   // DPORT
	TokIntType // int
	TokIf      // if
	TokElse    // else
	TokWhile   // while
	TokFor     // for
	TokSwitch  // switch
	TokCase    // case
	TokDefault // default
	TokBreak   // break
	TokRead    // READ_DATA
	TokWrite   // WRITE_DATA
	TokSelect  // SELECT
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokInt: "integer", TokString: "string",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokComma: ",", TokSemi: ";",
	TokColon: ":", TokAmp: "&", TokAssign: "=", TokPlusEq: "+=",
	TokMinusEq: "-=", TokPlus: "+", TokMinus: "-", TokStar: "*",
	TokSlash: "/", TokPercent: "%", TokEq: "==", TokNeq: "!=",
	TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokAndAnd: "&&", TokOrOr: "||", TokNot: "!", TokInc: "++", TokDec: "--",
	TokProcess: "PROCESS", TokIn: "In", TokOut: "Out", TokDPort: "DPORT",
	TokIntType: "int", TokIf: "if", TokElse: "else", TokWhile: "while",
	TokFor: "for", TokSwitch: "switch", TokCase: "case", TokDefault: "default",
	TokBreak: "break", TokRead: "READ_DATA", TokWrite: "WRITE_DATA",
	TokSelect: "SELECT",
}

// String implements fmt.Stringer.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"PROCESS": TokProcess, "In": TokIn, "Out": TokOut, "DPORT": TokDPort,
	"int": TokIntType, "if": TokIf, "else": TokElse, "while": TokWhile,
	"for": TokFor, "switch": TokSwitch, "case": TokCase, "default": TokDefault,
	"break": TokBreak, "READ_DATA": TokRead, "WRITE_DATA": TokWrite,
	"SELECT": TokSelect,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

// String implements fmt.Stringer.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Val  int64 // for TokInt
	Pos  Pos
}
