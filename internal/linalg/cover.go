package linalg

import "sort"

// Heuristic binate covering, used to select the candidate invariant of
// Section 5.5.2: a subset of the T-invariant base whose sum satisfies the
// pseudo-enabled-ECS necessary condition of Theorem 5.3.
//
// A binate covering instance is a matrix over {-1, 0, +1}. A subset S of
// columns is feasible when every row i either has no column j in S with
// A[i][j] == -1, or has some column j in S with A[i][j] == +1.

// BinateRow is one row of the covering matrix, stored sparsely.
type BinateRow struct {
	Pos []int // columns with +1
	Neg []int // columns with -1
}

// BinateCover searches for a small feasible subset of columns. It returns
// the selected column indices (ascending) and true, or nil and false when
// the greedy repair loop cannot find a feasible subset.
//
// The heuristic follows the classical greedy approach: start from the
// requested seed columns (may be nil), then repeatedly repair violated
// rows by adding the +1 column that fixes the most currently-violated
// rows. A row with a selected -1 column and no selectable +1 column makes
// the attempt fail; the offending seed column is dropped and the search
// restarts (bounded number of restarts).
func BinateCover(numCols int, rows []BinateRow, seed []int) ([]int, bool) {
	banned := map[int]bool{}
	for attempt := 0; attempt <= numCols; attempt++ {
		sel := map[int]bool{}
		for _, s := range seed {
			if !banned[s] {
				sel[s] = true
			}
		}
		ok, offender := repair(numCols, rows, sel, banned)
		if ok {
			var out []int
			for c := range sel {
				out = append(out, c)
			}
			sort.Ints(out)
			return out, true
		}
		if offender < 0 {
			return nil, false
		}
		banned[offender] = true
	}
	return nil, false
}

// repair greedily adds +1 columns until no row is violated. On failure it
// returns false and a selected column implicated in an unfixable row (or
// -1 when nothing can be blamed).
func repair(numCols int, rows []BinateRow, sel map[int]bool, banned map[int]bool) (bool, int) {
	for iter := 0; iter < numCols+len(rows)+1; iter++ {
		violated := violatedRows(rows, sel)
		if len(violated) == 0 {
			return true, 0
		}
		// Pick the non-banned +1 column fixing the most violated rows.
		gain := map[int]int{}
		for _, ri := range violated {
			for _, c := range rows[ri].Pos {
				if !banned[c] && !sel[c] {
					gain[c]++
				}
			}
		}
		best, bestGain := -1, 0
		cols := make([]int, 0, len(gain))
		for c := range gain {
			cols = append(cols, c)
		}
		sort.Ints(cols)
		for _, c := range cols {
			if gain[c] > bestGain {
				best, bestGain = c, gain[c]
			}
		}
		if best < 0 {
			// Some violated row has no fixable +1 column: blame one of
			// its selected -1 columns so the caller can restart.
			ri := violated[0]
			for _, c := range rows[ri].Neg {
				if sel[c] {
					return false, c
				}
			}
			return false, -1
		}
		sel[best] = true
	}
	return false, -1
}

func violatedRows(rows []BinateRow, sel map[int]bool) []int {
	var out []int
	for i, r := range rows {
		hasNeg := false
		for _, c := range r.Neg {
			if sel[c] {
				hasNeg = true
				break
			}
		}
		if !hasNeg {
			continue
		}
		hasPos := false
		for _, c := range r.Pos {
			if sel[c] {
				hasPos = true
				break
			}
		}
		if !hasPos {
			out = append(out, i)
		}
	}
	return out
}
