package petri

import "testing"

func TestExploreBounded(t *testing.T) {
	n := simpleNet(t)
	// Without sources: nothing fires from the initial marking.
	r := n.Explore(ExploreOptions{FireSources: false})
	if r.Len() != 1 {
		t.Errorf("markings without sources = %d, want 1", r.Len())
	}
	// With sources and a token cap, the space closes.
	r = n.Explore(ExploreOptions{FireSources: true, MaxTokensPerPlace: 4})
	if r.Len() < 3 {
		t.Errorf("markings with sources = %d, want several", r.Len())
	}
	if !r.Truncated {
		t.Error("cap should truncate the infinite source-driven space")
	}
}

func TestExploreMaxMarkings(t *testing.T) {
	n := simpleNet(t)
	r := n.Explore(ExploreOptions{FireSources: true, MaxMarkings: 2, MaxTokensPerPlace: 10})
	if r.Len() > 2 {
		t.Errorf("markings = %d, exceeds limit 2", r.Len())
	}
	if !r.Truncated {
		t.Error("limit should mark the result truncated")
	}
}

func TestDeadlockMarkings(t *testing.T) {
	n := New("dead")
	p := n.AddPlace("p", PlaceInternal, 1)
	q := n.AddPlace("q", PlaceInternal, 0)
	tr := n.AddTransition("t", TransNormal)
	n.AddArc(p, tr, 1)
	n.AddArcTP(tr, q, 1)
	r := n.Explore(ExploreOptions{})
	dead := r.DeadlockMarkings()
	if len(dead) != 1 {
		t.Fatalf("deadlocks = %v, want exactly the final marking", dead)
	}
}

func TestCoEnabled(t *testing.T) {
	n := choiceNet(t)
	r := n.Explore(ExploreOptions{})
	// t1 and t2 share the equal-choice place: co-enabled.
	co, err := n.CoEnabled(r, 0, 1)
	if err != nil || !co {
		t.Errorf("t1/t2 co-enabled = %v (%v), want true", co, err)
	}
	// r1 and r2 consume distinct internal places (only pc1 marked).
	co, err = n.CoEnabled(r, 2, 3)
	if err != nil || co {
		t.Errorf("r1/r2 co-enabled = %v (%v), want false", co, err)
	}
	if _, err := n.CoEnabled(r, 0, 99); err == nil {
		t.Error("out-of-range index should error")
	}
}

func TestDeadlockMarkingsNotClipped(t *testing.T) {
	// A budget of 2 markings clips the second marking's exploration:
	// it has enabled transitions whose successors were never recorded,
	// so it must not be reported as a deadlock.
	n := simpleNet(t)
	r := n.Explore(ExploreOptions{FireSources: true, MaxMarkings: 2, MaxTokensPerPlace: 10})
	if !r.Truncated {
		t.Fatal("budget of 2 should truncate")
	}
	for _, id := range r.DeadlockMarkings() {
		if r.Clipped[id] {
			t.Fatalf("clipped marking %d reported as deadlock", id)
		}
		m := r.MarkingAt(id)
		for _, tr := range n.Transitions {
			if m.Enabled(tr) {
				t.Fatalf("deadlock marking %d has enabled transition %s", id, tr.Name)
			}
		}
	}
}
