// Package linalg provides the small integer linear-algebra kernel needed
// by the scheduling heuristics: a Farkas-style generator of the
// non-negative T-invariant basis of a Petri net incidence matrix, GCD
// normalization, and a heuristic binate-covering solver used to pick the
// candidate invariant of Section 5.5.2 of the paper.
package linalg

import "sort"

// Vector is a dense integer vector.
type Vector []int

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// IsZero reports whether every component is zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Add returns v + o.
func (v Vector) Add(o Vector) Vector {
	c := v.Clone()
	for i := range o {
		c[i] += o[i]
	}
	return c
}

// Scale returns k*v.
func (v Vector) Scale(k int) Vector {
	c := v.Clone()
	for i := range c {
		c[i] *= k
	}
	return c
}

// Dot returns the inner product of v and o.
func (v Vector) Dot(o Vector) int {
	s := 0
	for i := range v {
		s += v[i] * o[i]
	}
	return s
}

// Support returns the indices of the non-zero components, ascending.
func (v Vector) Support() []int {
	var out []int
	for i, x := range v {
		if x != 0 {
			out = append(out, i)
		}
	}
	return out
}

// GCD returns the greatest common divisor of a and b (non-negative).
func GCD(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Normalize divides v by the GCD of its components (no-op for the zero
// vector) and returns v.
func (v Vector) Normalize() Vector {
	g := 0
	for _, x := range v {
		g = GCD(g, x)
	}
	if g > 1 {
		for i := range v {
			v[i] /= g
		}
	}
	return v
}

// MulMatVec returns C·x for a dense matrix C (rows × cols) and x of
// length cols.
func MulMatVec(c [][]int, x Vector) Vector {
	out := make(Vector, len(c))
	for i, row := range c {
		s := 0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// TInvariantBasis computes the set of minimal-support non-negative
// T-invariants of the incidence matrix C (rows = places, cols =
// transitions): vectors x >= 0, x != 0 with C·x = 0. Every semi-positive
// invariant is a non-negative rational combination of the result.
//
// The algorithm is the classical Farkas / Martinez-Silva procedure:
// starting from [Cᵀ | I], rows are combined pairwise to cancel each
// place column; rows whose support strictly contains another's are
// discarded to keep only minimal-support generators.
func TInvariantBasis(c [][]int) []Vector {
	nPlaces := len(c)
	nTrans := 0
	if nPlaces > 0 {
		nTrans = len(c[0])
	}
	if nTrans == 0 {
		return nil
	}
	// farkasRow pairs the residual place-effect vector (a) with the
	// combination coefficients accumulated so far (b).
	rows := make([]farkasRow, nTrans)
	for j := 0; j < nTrans; j++ {
		a := make(Vector, nPlaces)
		for i := 0; i < nPlaces; i++ {
			a[i] = c[i][j]
		}
		b := make(Vector, nTrans)
		b[j] = 1
		rows[j] = farkasRow{a: a, b: b}
	}
	for col := 0; col < nPlaces; col++ {
		var zero, pos, neg []farkasRow
		for _, r := range rows {
			switch {
			case r.a[col] == 0:
				zero = append(zero, r)
			case r.a[col] > 0:
				pos = append(pos, r)
			default:
				neg = append(neg, r)
			}
		}
		next := zero
		for _, rp := range pos {
			for _, rn := range neg {
				// Combine with positive coefficients so rp.a[col] and
				// rn.a[col] cancel.
				kp := -rn.a[col] // > 0
				kn := rp.a[col]  // > 0
				g := GCD(kp, kn)
				kp, kn = kp/g, kn/g
				na := rp.a.Scale(kp).Add(rn.a.Scale(kn))
				nb := rp.b.Scale(kp).Add(rn.b.Scale(kn))
				nb2 := nb.Clone().Normalize()
				// Rescale na consistently with nb's normalization.
				gg := 0
				for _, x := range nb {
					gg = GCD(gg, x)
				}
				if gg > 1 {
					for i := range na {
						na[i] /= gg
					}
				}
				next = append(next, farkasRow{a: na, b: nb2})
			}
		}
		rows = pruneNonMinimal(next)
	}
	var out []Vector
	for _, r := range rows {
		if !r.b.IsZero() {
			out = append(out, r.b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessVec(out[i], out[j]) })
	out = dedupVectors(out)
	return out
}

func lessVec(a, b Vector) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func dedupVectors(vs []Vector) []Vector {
	var out []Vector
	for i, v := range vs {
		if i > 0 && lessEq(out[len(out)-1], v) && lessEq(v, out[len(out)-1]) {
			continue
		}
		out = append(out, v)
	}
	return out
}

func lessEq(a, b Vector) bool { return !lessVec(b, a) }

type farkasRow struct {
	a Vector
	b Vector
}

// pruneNonMinimal removes rows whose invariant support strictly contains
// the support of another row, bounding the combinatorial blowup.
func pruneNonMinimal(rows []farkasRow) []farkasRow {
	keep := make([]bool, len(rows))
	for i := range keep {
		keep[i] = true
	}
	for i := range rows {
		if !keep[i] {
			continue
		}
		si := rows[i].b.Support()
		for j := range rows {
			if i == j || !keep[j] || !keep[i] {
				continue
			}
			sj := rows[j].b.Support()
			if len(sj) == 0 {
				continue
			}
			if strictSuperset(si, sj) {
				keep[i] = false
			}
		}
	}
	var out []farkasRow
	for i, r := range rows {
		if keep[i] {
			out = append(out, r)
		}
	}
	return out
}

// strictSuperset reports whether sorted int set a strictly contains b.
func strictSuperset(a, b []int) bool {
	if len(a) <= len(b) {
		return false
	}
	i := 0
	for _, x := range b {
		for i < len(a) && a[i] < x {
			i++
		}
		if i >= len(a) || a[i] != x {
			return false
		}
	}
	return true
}
