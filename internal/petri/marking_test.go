package petri

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarkingBasics(t *testing.T) {
	m := Marking{1, 0, 2}
	c := m.Clone()
	c[0] = 9
	if m[0] != 1 {
		t.Error("Clone should not alias")
	}
	if !m.Equal(Marking{1, 0, 2}) {
		t.Error("Equal failed")
	}
	if m.Equal(Marking{1, 0}) {
		t.Error("Equal with different lengths should be false")
	}
	if !(Marking{2, 0, 2}).Covers(m) {
		t.Error("Covers failed")
	}
	if (Marking{0, 0, 2}).Covers(m) {
		t.Error("Covers should fail when below")
	}
	if m.Total() != 3 {
		t.Errorf("Total = %d, want 3", m.Total())
	}
}

func TestMarkingKeyDistinguishes(t *testing.T) {
	a := Marking{1, 0, 2}
	b := Marking{1, 2, 0}
	if a.Key() == b.Key() {
		t.Error("distinct markings share a key")
	}
	if a.Key() != a.Clone().Key() {
		t.Error("equal markings should share a key")
	}
}

func TestMarkingFormat(t *testing.T) {
	n := New("fmt")
	n.AddPlace("x", PlaceChannel, 0)
	n.AddPlace("y", PlaceChannel, 0)
	if got := (Marking{0, 0}).Format(n); got != "0" {
		t.Errorf("empty marking = %q, want \"0\"", got)
	}
	if got := (Marking{2, 1}).Format(n); got != "x x y" {
		t.Errorf("marking = %q, want \"x x y\"", got)
	}
}

func TestFirePanicsWhenDisabled(t *testing.T) {
	n := simpleNet(t)
	b := n.TransitionByName("b")
	m := Marking{1, 0} // p1 lacks tokens
	defer func() {
		if recover() == nil {
			t.Error("Fire of disabled transition should panic")
		}
	}()
	m.Fire(b)
}

func TestFireSeq(t *testing.T) {
	n := simpleNet(t)
	a := n.TransitionByName("a")
	b := n.TransitionByName("b")
	m := n.InitialMarking()
	final, err := m.FireSeq([]*Transition{a, b})
	if err != nil {
		t.Fatalf("FireSeq: %v", err)
	}
	if !final.Equal(Marking{1, 0}) {
		t.Errorf("final = %v, want [1 0]", final)
	}
	if _, err := m.FireSeq([]*Transition{b, b}); err == nil {
		t.Error("FireSeq of disabled sequence should fail")
	}
	if m.Fireable([]*Transition{b}) {
		t.Error("b should not be fireable at the initial marking")
	}
}

// TestFireConservation (property): firing changes each place by exactly
// the incidence column of the fired transition.
func TestFireConservation(t *testing.T) {
	n := simpleNet(t)
	c := n.IncidenceMatrix()
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		m := make(Marking, len(n.Places))
		for i := range m {
			m[i] = rng.Intn(5)
		}
		for _, tr := range n.Transitions {
			if !m.Enabled(tr) {
				continue
			}
			after := m.Fire(tr)
			for p := range m {
				if after[p]-m[p] != c[p][tr.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEnabledMonotone (property): adding tokens never disables a
// transition.
func TestEnabledMonotone(t *testing.T) {
	n := simpleNet(t)
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		m := make(Marking, len(n.Places))
		bigger := make(Marking, len(n.Places))
		for i := range m {
			m[i] = rng.Intn(4)
			bigger[i] = m[i] + rng.Intn(3)
		}
		for _, tr := range n.Transitions {
			if m.Enabled(tr) && !bigger.Enabled(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRespectsBounds(t *testing.T) {
	n := New("b")
	p := n.AddPlace("p", PlaceChannel, 0)
	p.Bound = 2
	n.AddPlace("q", PlaceChannel, 0) // unbounded
	if !n.RespectsBounds(Marking{2, 99}) {
		t.Error("marking within bounds rejected")
	}
	if n.RespectsBounds(Marking{3, 0}) {
		t.Error("marking beyond bound accepted")
	}
}

func TestEnabledTransitions(t *testing.T) {
	n := simpleNet(t)
	got := n.EnabledTransitions(n.InitialMarking())
	// Only the source a is enabled initially.
	if len(got) != 1 || n.Transitions[got[0]].Name != "a" {
		t.Errorf("EnabledTransitions = %v", got)
	}
}
